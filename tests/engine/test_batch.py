"""Equivalence and behaviour tests for the batched engine (repro.engine.batch)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.coupling import fraud_matrix, homophily_matrix, synthetic_residual_matrix
from repro.core import fabp, fabp_batch, linbp, linbp_star
from repro.core.fabp import binary_coupling
from repro.engine import BatchWorkspace, clear_plan_cache, get_plan, run_batch
from repro.exceptions import NotConvergentParametersError, ValidationError
from repro.graphs import Graph, chain_graph, random_graph, torus_graph


@pytest.fixture(autouse=True)
def fresh_cache():
    clear_plan_cache()
    yield
    clear_plan_cache()


def _workload(num_queries: int, num_nodes: int = 40, seed: int = 11):
    graph = random_graph(num_nodes, 0.12, seed=7)
    coupling = synthetic_residual_matrix(epsilon=0.05)
    rng = np.random.default_rng(seed)
    explicit_list = []
    for _ in range(num_queries):
        explicit = np.zeros((graph.num_nodes, 3))
        for node in rng.choice(graph.num_nodes, size=6, replace=False):
            values = rng.uniform(-0.1, 0.1, size=2)
            explicit[node] = [values[0], values[1], -values.sum()]
        explicit_list.append(explicit)
    return graph, coupling, explicit_list


class TestBatchSequentialEquivalence:
    def test_beliefs_match_sequential_linbp_to_1e10(self):
        graph, coupling, explicit_list = _workload(10)
        plan = get_plan(graph, coupling)
        batched = run_batch(plan, explicit_list)
        for explicit, batch_result in zip(explicit_list, batched):
            sequential = linbp(graph, coupling, explicit)
            assert np.abs(batch_result.beliefs - sequential.beliefs).max() < 1e-10
            assert batch_result.iterations == sequential.iterations
            assert batch_result.converged == sequential.converged
            assert batch_result.residual_history == \
                pytest.approx(sequential.residual_history, abs=1e-12)

    def test_beliefs_match_sequential_linbp_star(self):
        graph, coupling, explicit_list = _workload(5)
        plan = get_plan(graph, coupling, echo_cancellation=False)
        batched = run_batch(plan, explicit_list)
        for explicit, batch_result in zip(explicit_list, batched):
            sequential = linbp_star(graph, coupling, explicit)
            assert np.abs(batch_result.beliefs - sequential.beliefs).max() < 1e-10
            assert batch_result.method == "LinBP*"

    def test_batch_matches_fabp_closed_form_to_1e10(self):
        graph = random_graph(30, 0.15, seed=3)
        h = 0.02  # well inside the convergence region of this graph
        rng = np.random.default_rng(5)
        explicit_scalars = [rng.uniform(-0.1, 0.1, graph.num_nodes)
                            for _ in range(4)]
        # Iterative engine on the k = 2 coupling [[h, -h], [-h, h]] ...
        plan = get_plan(graph, binary_coupling(h))
        stacked = [np.column_stack([e, -e]) for e in explicit_scalars]
        batched = run_batch(plan, stacked, tolerance=1e-14, max_iterations=1000)
        # ... must agree with FaBP's direct solve of the same linear system.
        for scalars, batch_result in zip(explicit_scalars, batched):
            direct = fabp(graph, h, scalars, variant="linbp")
            assert batch_result.converged
            assert np.abs(batch_result.beliefs - direct.beliefs).max() < 1e-10

    def test_fabp_batch_matches_sequential_fabp(self):
        graph = random_graph(30, 0.15, seed=3)
        rng = np.random.default_rng(6)
        explicit_scalars = [rng.uniform(-0.2, 0.2, graph.num_nodes)
                            for _ in range(6)]
        for variant in ("linbp", "exact"):
            batched = fabp_batch(graph, 0.03, explicit_scalars, variant=variant)
            assert len(batched) == len(explicit_scalars)
            for scalars, batch_result in zip(explicit_scalars, batched):
                sequential = fabp(graph, 0.03, scalars, variant=variant)
                assert np.abs(batch_result.beliefs
                              - sequential.beliefs).max() < 1e-10
                assert batch_result.method == sequential.method

    def test_heterogeneous_convergence_freezes_each_query(self):
        # Queries with very different magnitudes converge at different
        # iterations; each must match its own sequential run exactly.
        graph = chain_graph(12)
        coupling = homophily_matrix(epsilon=0.4)
        explicit_list = []
        for scale in (1e-6, 1.0, 1e4):
            explicit = np.zeros((12, 2))
            explicit[0] = [scale, -scale]
            explicit[11] = [-scale, scale]
            explicit_list.append(explicit)
        batched = run_batch(get_plan(graph, coupling), explicit_list,
                            max_iterations=500)
        iteration_counts = set()
        for explicit, batch_result in zip(explicit_list, batched):
            sequential = linbp(graph, coupling, explicit, max_iterations=500)
            assert batch_result.iterations == sequential.iterations
            assert np.abs(batch_result.beliefs - sequential.beliefs).max() <= \
                1e-10 * max(1.0, np.abs(sequential.beliefs).max())
            iteration_counts.add(batch_result.iterations)
        assert len(iteration_counts) > 1  # the scenario really is heterogeneous


class TestBatchBehaviour:
    def test_empty_batch_returns_empty_list(self):
        graph, coupling, _ = _workload(1)
        assert run_batch(get_plan(graph, coupling), []) == []

    def test_fixed_iteration_budget(self):
        graph, coupling, explicit_list = _workload(3)
        batched = run_batch(get_plan(graph, coupling), explicit_list,
                            num_iterations=5)
        for explicit, batch_result in zip(explicit_list, batched):
            sequential = linbp(graph, coupling, explicit, num_iterations=5)
            assert batch_result.iterations == 5
            assert len(batch_result.residual_history) == 5
            assert np.abs(batch_result.beliefs - sequential.beliefs).max() < 1e-10

    def test_initial_beliefs_reach_the_same_fixed_point(self):
        graph, coupling, explicit_list = _workload(2)
        starts = [None, np.full((graph.num_nodes, 3), 0.01)]
        batched = run_batch(get_plan(graph, coupling), explicit_list,
                            initial_beliefs=starts)
        plain = run_batch(get_plan(graph, coupling), explicit_list)
        for with_start, zero_start in zip(batched, plain):
            assert np.allclose(with_start.beliefs, zero_start.beliefs, atol=1e-8)

    def test_require_convergence_uses_lemma8(self):
        graph = torus_graph()
        diverging = fraud_matrix(epsilon=10.0)
        explicit = np.zeros((graph.num_nodes, 3))
        explicit[0] = [0.2, -0.1, -0.1]
        with pytest.raises(NotConvergentParametersError):
            run_batch(get_plan(graph, diverging), [explicit],
                      require_convergence=True)

    def test_batch_extra_metadata(self):
        graph, coupling, explicit_list = _workload(4)
        batched = run_batch(get_plan(graph, coupling), explicit_list)
        for batch_result in batched:
            assert batch_result.extra["engine"] == "batch"
            assert batch_result.extra["batch_size"] == 4
            assert batch_result.extra["epsilon"] == coupling.epsilon

    def test_workspace_reuse_across_batches(self):
        graph, coupling, explicit_list = _workload(3)
        plan = get_plan(graph, coupling)
        workspace = BatchWorkspace(plan, 3)
        first = run_batch(plan, explicit_list, workspace=workspace)
        second = run_batch(plan, explicit_list, workspace=workspace)
        for a, b in zip(first, second):
            assert np.array_equal(a.beliefs, b.beliefs)

    def test_workspace_width_mismatch_is_rejected(self):
        graph, coupling, explicit_list = _workload(3)
        plan = get_plan(graph, coupling)
        workspace = BatchWorkspace(plan, 2)
        with pytest.raises(ValidationError):
            run_batch(plan, explicit_list, workspace=workspace)

    def test_shape_validation(self):
        graph, coupling, explicit_list = _workload(1)
        plan = get_plan(graph, coupling)
        with pytest.raises(ValidationError):
            run_batch(plan, [explicit_list[0][:, :2]])
        with pytest.raises(ValidationError):
            run_batch(plan, [explicit_list[0][:-1]])
        with pytest.raises(ValidationError):
            run_batch(plan, explicit_list, max_iterations=0)
        with pytest.raises(ValidationError):
            run_batch(plan, explicit_list, tolerance=0.0)

    def test_empty_graph_batch(self):
        graph = Graph.empty(4)
        coupling = homophily_matrix(epsilon=0.1)
        explicit = np.zeros((4, 2))
        result = run_batch(get_plan(graph, coupling), [explicit])[0]
        assert result.converged
        assert np.array_equal(result.beliefs, explicit)
