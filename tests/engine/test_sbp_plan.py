"""Tests for the cached SBP plan layer: caching, sweeps, batching, repairs."""

from __future__ import annotations

import numpy as np
import pytest
from scipy.sparse.csgraph import shortest_path

from repro.coupling import fraud_matrix, homophily_matrix, synthetic_residual_matrix
from repro.core import SBP, sbp
from repro.core._sbp_reference import ReferenceSBP
from repro.engine import (
    SBPPlan,
    clear_plan_cache,
    get_sbp_plan,
    plan_cache_info,
    run_sbp_batch,
    sbp_plan_cache_info,
)
from repro.exceptions import ValidationError
from repro.graphs import (
    UNREACHABLE,
    Graph,
    chain_graph,
    geodesic_numbers,
    grid_graph,
    level_slices,
    modified_adjacency,
    random_graph,
    sbp_example_graph,
    torus_graph,
)


def _random_workload(seed: int, num_nodes: int = 40, num_labels: int = 6):
    graph = random_graph(num_nodes, 0.12, seed=seed)
    coupling = synthetic_residual_matrix(epsilon=0.5)
    rng = np.random.default_rng(seed + 100)
    explicit = np.zeros((num_nodes, 3))
    for node in rng.choice(num_nodes, size=num_labels, replace=False):
        values = rng.uniform(-0.1, 0.1, size=2)
        explicit[node] = [values[0], values[1], -values.sum()]
    return graph, coupling, explicit


class TestPlanCache:
    def setup_method(self):
        clear_plan_cache()

    def test_same_graph_and_labels_share_a_plan(self):
        graph = torus_graph()
        first = get_sbp_plan(graph, [0, 1, 2])
        assert get_sbp_plan(graph, [0, 1, 2]) is first
        assert get_sbp_plan(graph, [2, 1, 0]) is first  # order-insensitive key
        info = sbp_plan_cache_info()
        assert info["sbp_hits"] == 2 and info["sbp_misses"] == 1

    def test_different_labels_build_different_plans(self):
        graph = torus_graph()
        assert get_sbp_plan(graph, [0]) is not get_sbp_plan(graph, [0, 1])

    def test_different_graphs_build_different_plans(self):
        first, second = chain_graph(5), chain_graph(5)
        assert get_sbp_plan(first, [0]) is not get_sbp_plan(second, [0])

    def test_clear_plan_cache_covers_sbp_plans(self):
        get_sbp_plan(torus_graph(), [0])
        clear_plan_cache()
        assert sbp_plan_cache_info() == {"sbp_size": 0, "sbp_hits": 0,
                                         "sbp_misses": 0}
        assert plan_cache_info()["sbp_size"] == 0

    def test_plan_survives_graph_collection_but_entry_is_evicted(self):
        graph = chain_graph(6)
        plan = get_sbp_plan(graph, [0])
        del graph
        import gc
        gc.collect()
        assert sbp_plan_cache_info()["sbp_size"] == 0
        assert plan.graph is None
        assert plan.max_level == 5  # artifacts stay usable


class TestPlanStructure:
    def test_geodesic_numbers_match_module_function(self):
        graph = sbp_example_graph()
        plan = SBPPlan(graph, [1, 6])
        assert np.array_equal(plan.geodesic_numbers,
                              geodesic_numbers(graph, [1, 6]))

    def test_level_slices_reassemble_modified_adjacency(self):
        for seed in range(4):
            graph = random_graph(30, 0.12, seed=seed)
            labeled = [0, 7, 13]
            levels, slices = level_slices(graph, labeled)
            dag = modified_adjacency(graph, labeled).toarray()
            rebuilt = np.zeros_like(dag)
            for level, block in enumerate(slices, start=1):
                rows = levels.nodes_at(level)
                cols = levels.nodes_at(level - 1)
                rebuilt[np.ix_(cols, rows)] = block.toarray().T
            assert np.allclose(rebuilt, dag)

    def test_edges_per_sweep_counts_dag_entries(self):
        graph = sbp_example_graph()
        plan = SBPPlan(graph, [1, 6])
        assert plan.edges_per_sweep == modified_adjacency(graph, [1, 6]).nnz

    def test_propagate_validates_block(self):
        plan = SBPPlan(chain_graph(4), [0])
        residual = homophily_matrix(epsilon=0.3).residual
        with pytest.raises(ValidationError):
            plan.propagate(np.zeros((3, 2)), residual)
        with pytest.raises(ValidationError):
            plan.propagate(np.zeros((4, 3)), residual)  # width not multiple


class TestVectorizedBFSAgainstScipy:
    def test_matches_csgraph_hop_distances_on_random_graphs(self):
        for seed in range(8):
            rng = np.random.default_rng(seed)
            graph = random_graph(60, rng.uniform(0.02, 0.15), seed=seed)
            labeled = rng.choice(60, size=int(rng.integers(1, 6)),
                                 replace=False)
            numbers = geodesic_numbers(graph, labeled.tolist())
            hops = shortest_path(graph.adjacency, method="D", unweighted=True,
                                 indices=labeled)
            expected = np.min(np.atleast_2d(hops), axis=0)
            finite = np.isfinite(expected)
            assert np.array_equal(numbers[finite], expected[finite].astype(int))
            assert np.all(numbers[~finite] == UNREACHABLE)

    def test_weighted_graph_distances_count_hops_not_weights(self):
        graph = Graph.from_edges([(0, 1, 9.0), (1, 2, 0.1), (0, 2, 5.0)])
        assert geodesic_numbers(graph, [0]).tolist() == [0, 1, 1]


class TestBatchedSBP:
    def test_batch_matches_sequential_runs(self):
        graph, coupling, explicit = _random_workload(3)
        rng = np.random.default_rng(5)
        queries = [explicit * scale for scale in rng.uniform(0.5, 1.5, 6)]
        batched = run_sbp_batch(graph, coupling, queries)
        for query, result in zip(queries, batched):
            sequential = sbp(graph, coupling, query)
            assert np.abs(result.beliefs - sequential.beliefs).max() < 1e-10
            assert np.array_equal(result.extra["geodesic_numbers"],
                                  sequential.extra["geodesic_numbers"])
            assert result.iterations == sequential.iterations

    def test_mixed_labeled_sets_are_grouped_not_merged(self):
        graph, coupling, explicit = _random_workload(7)
        other = explicit.copy()
        labeled = np.nonzero(np.any(explicit != 0.0, axis=1))[0]
        other[labeled[0]] = 0.0  # different labeled set -> different plan
        results = run_sbp_batch(graph, coupling, [explicit, other, explicit])
        for query, result in zip([explicit, other, explicit], results):
            sequential = sbp(graph, coupling, query)
            assert np.abs(result.beliefs - sequential.beliefs).max() < 1e-10

    def test_empty_batch(self):
        graph, coupling, _ = _random_workload(1)
        assert run_sbp_batch(graph, coupling, []) == []

    def test_unlabeled_query_stays_zero(self):
        graph, coupling, explicit = _random_workload(2)
        results = run_sbp_batch(graph, coupling,
                                [explicit, np.zeros_like(explicit)])
        assert np.allclose(results[1].beliefs, 0.0)
        assert np.all(results[1].extra["geodesic_numbers"] == UNREACHABLE)

    def test_shape_mismatch_rejected(self):
        graph, coupling, explicit = _random_workload(4)
        with pytest.raises(ValidationError):
            run_sbp_batch(graph, coupling, [explicit[:, :2]])

    def test_batch_extra_metadata(self):
        graph, coupling, explicit = _random_workload(6)
        results = run_sbp_batch(graph, coupling, [explicit, explicit])
        assert results[0].extra["engine"] == "sbp_batch"
        assert results[0].extra["batch_size"] == 2


class TestVectorizedAgainstReference:
    def test_run_matches_reference_on_grid(self):
        graph = grid_graph(12, 12)
        coupling = fraud_matrix(epsilon=0.5)
        rng = np.random.default_rng(9)
        explicit = np.zeros((graph.num_nodes, 3))
        for node in rng.choice(graph.num_nodes, size=5, replace=False):
            values = rng.uniform(-0.1, 0.1, size=2)
            explicit[node] = [values[0], values[1], -values.sum()]
        runner = SBP(graph, coupling)
        result = runner.run(explicit)
        reference = ReferenceSBP(graph, coupling)
        reference_beliefs = reference.run(explicit)
        assert np.abs(result.beliefs - reference_beliefs).max() < 1e-10
        assert np.array_equal(result.extra["geodesic_numbers"],
                              reference.geodesic_numbers)
