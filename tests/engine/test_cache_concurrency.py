"""Concurrency and TTL regression tests for the shared GraphKeyedCache.

The propagation service's coalescer hits the engine caches from many
threads at once; before the service existed, ``lookup``/``store`` mutated
the shared ``OrderedDict`` without a lock (``move_to_end`` during a
concurrent ``store`` corrupts the dict or raises).  These tests hammer
one cache from a thread pool and pin down the TTL semantics the service
relies on.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor

from repro.engine.plan import GraphKeyedCache
from repro.graphs import chain_graph


class TestThreadSafety:
    def test_hammer_from_thread_pool(self):
        cache = GraphKeyedCache(max_size=8)
        graphs = [chain_graph(3) for _ in range(4)]

        def worker(worker_id: int) -> int:
            completed = 0
            for round_number in range(300):
                graph = graphs[(worker_id + round_number) % len(graphs)]
                suffix = (round_number % 11,)
                value = cache.lookup(graph, suffix)
                if value is None:
                    cache.store(graph, suffix, (worker_id, round_number))
                if round_number % 50 == 0:
                    len(cache)
                completed += 1
            return completed

        with ThreadPoolExecutor(max_workers=8) as pool:
            totals = list(pool.map(worker, range(8)))
        assert totals == [300] * 8
        assert len(cache) <= 8
        stats = cache.stats
        assert stats["hits"] + stats["misses"] == 8 * 300

    def test_concurrent_store_respects_capacity(self):
        cache = GraphKeyedCache(max_size=4)
        graph = chain_graph(3)

        def worker(worker_id: int) -> None:
            for i in range(200):
                cache.store(graph, (worker_id, i), i)

        with ThreadPoolExecutor(max_workers=6) as pool:
            list(pool.map(worker, range(6)))
        assert len(cache) <= 4

    def test_clear_while_hammering(self):
        cache = GraphKeyedCache(max_size=16)
        graph = chain_graph(3)

        def writer() -> None:
            for i in range(500):
                cache.store(graph, (i % 7,), i)
                cache.lookup(graph, (i % 7,))

        def clearer() -> None:
            for _ in range(50):
                cache.clear()

        with ThreadPoolExecutor(max_workers=4) as pool:
            futures = [pool.submit(writer) for _ in range(3)]
            futures.append(pool.submit(clearer))
            for future in futures:
                future.result()
        assert len(cache) <= 16


class TestTTL:
    def test_entries_expire_after_ttl(self):
        now = [0.0]
        cache = GraphKeyedCache(max_size=8, ttl_seconds=10.0,
                                clock=lambda: now[0])
        graph = chain_graph(3)
        cache.store(graph, ("a",), "value")
        assert cache.lookup(graph, ("a",)) == "value"
        now[0] = 9.9
        assert cache.lookup(graph, ("a",)) == "value"
        now[0] = 10.0
        assert cache.lookup(graph, ("a",)) is None
        assert cache.stats["expired"] == 1
        assert len(cache) == 0

    def test_store_refreshes_ttl(self):
        now = [0.0]
        cache = GraphKeyedCache(max_size=8, ttl_seconds=10.0,
                                clock=lambda: now[0])
        graph = chain_graph(3)
        cache.store(graph, ("a",), "old")
        now[0] = 8.0
        cache.store(graph, ("a",), "new")
        now[0] = 15.0  # past the original deadline, inside the refreshed one
        assert cache.lookup(graph, ("a",)) == "new"

    def test_no_ttl_means_no_expiry(self):
        now = [0.0]
        cache = GraphKeyedCache(max_size=8, clock=lambda: now[0])
        graph = chain_graph(3)
        cache.store(graph, ("a",), "value")
        now[0] = 1e9
        assert cache.lookup(graph, ("a",)) == "value"
