"""Kernel-level guarantees: spmm dtype guard, fallback tiers, dtype-neutral fills."""

from __future__ import annotations

import numpy as np
import pytest
import scipy.sparse as sp

from repro.engine import backend, kernels
from repro.exceptions import ValidationError


def _operands(dtype, n: int = 25, width: int = 6, seed: int = 9):
    rng = np.random.default_rng(seed)
    matrix = sp.random(n, n, density=0.25, random_state=seed,
                       format="csr").astype(dtype)
    dense = np.ascontiguousarray(rng.standard_normal((n, width)),
                                 dtype=dtype)
    out = np.empty((n, width), dtype=dtype)
    return matrix, dense, out


class TestDtypeGuard:
    def test_mixed_operand_dtypes_rejected_with_named_dtypes(self):
        matrix, dense, out = _operands(np.float64)
        with pytest.raises(ValidationError) as excinfo:
            kernels.spmm(matrix, dense.astype(np.float32), out)
        message = str(excinfo.value)
        assert "dtype mismatch" in message
        assert "float64" in message and "float32" in message

    def test_mismatched_out_buffer_rejected(self):
        matrix, dense, out = _operands(np.float32)
        with pytest.raises(ValidationError):
            kernels.spmm(matrix, dense, out.astype(np.float64))

    def test_matching_float32_operands_accepted(self):
        matrix, dense, out = _operands(np.float32)
        kernels.spmm(matrix, dense, out)
        assert out.dtype == np.float32
        assert np.allclose(out, matrix @ dense, atol=1e-5)


class TestZeroFill:
    @pytest.mark.parametrize("dtype", [np.float32, np.float64])
    def test_non_accumulating_spmm_overwrites_poisoned_buffer(self, dtype):
        matrix, dense, out = _operands(dtype)
        out.fill(np.nan)
        kernels.spmm(matrix, dense, out)
        assert np.isfinite(out).all()
        assert out.dtype == dtype

    @pytest.mark.parametrize("dtype", [np.float32, np.float64])
    def test_accumulate_adds_onto_existing_contents(self, dtype):
        matrix, dense, out = _operands(dtype)
        product = kernels.spmm(matrix, dense, out).copy()
        kernels.spmm(matrix, dense, out, accumulate=True)
        assert np.allclose(out, 2 * product, atol=1e-5)


class TestFallbackTiers:
    """Satellite: the engine must survive losing the private scipy symbol."""

    @pytest.mark.parametrize("dtype", [np.float32, np.float64])
    def test_generic_fallback_matches_inplace_path(self, dtype, monkeypatch):
        matrix, dense, out = _operands(dtype)
        fast = kernels.spmm(matrix, dense, out).copy()
        monkeypatch.setattr(kernels, "HAVE_INPLACE_SPMM", False)
        monkeypatch.setattr(backend, "HAVE_NUMBA", False)
        slow = kernels.spmm(matrix, dense, np.empty_like(out))
        # Same scipy accumulation loop underneath - bitwise identical.
        assert np.array_equal(fast, slow)

    def test_generic_fallback_accumulates(self, monkeypatch):
        matrix, dense, out = _operands(np.float64)
        expected = kernels.spmm(matrix, dense, out).copy()
        monkeypatch.setattr(kernels, "HAVE_INPLACE_SPMM", False)
        monkeypatch.setattr(backend, "HAVE_NUMBA", False)
        accumulated = expected.copy()
        kernels.spmm(matrix, dense, accumulated, accumulate=True)
        assert np.allclose(accumulated, 2 * expected)

    def test_numba_tier_used_when_inplace_lost(self, monkeypatch):
        matrix, dense, out = _operands(np.float64)
        expected = kernels.spmm(matrix, dense, out).copy()
        calls = []

        def fake_numba_spmm(csr, block, buffer, accumulate=False):
            calls.append(True)
            buffer[...] = csr @ block
            return buffer

        monkeypatch.setattr(kernels, "HAVE_INPLACE_SPMM", False)
        monkeypatch.setattr(backend, "HAVE_NUMBA", True)
        monkeypatch.setattr(backend, "numba_spmm", fake_numba_spmm)
        routed = kernels.spmm(matrix, dense, np.empty_like(out))
        assert calls, "numba tier was not consulted"
        assert np.array_equal(routed, expected)

    def test_whole_batch_run_identical_without_inplace_spmm(self, monkeypatch):
        from repro.coupling import synthetic_residual_matrix
        from repro.engine import clear_plan_cache, get_plan, run_batch
        from repro.graphs import random_graph

        graph = random_graph(40, 0.12, seed=7)
        coupling = synthetic_residual_matrix(epsilon=0.05)
        rng = np.random.default_rng(11)
        explicit = np.zeros((graph.num_nodes, 3))
        for node in rng.choice(graph.num_nodes, size=6, replace=False):
            values = rng.uniform(-0.1, 0.1, size=2)
            explicit[node] = [values[0], values[1], -values.sum()]
        clear_plan_cache()
        fast = run_batch(get_plan(graph, coupling), [explicit])[0]
        monkeypatch.setattr(kernels, "HAVE_INPLACE_SPMM", False)
        monkeypatch.setattr(backend, "HAVE_NUMBA", False)
        clear_plan_cache()
        slow = run_batch(get_plan(graph, coupling), [explicit])[0]
        clear_plan_cache()
        # The generic path adds the explicit term after (not inside) the
        # sparse accumulation, so rounding differs in the last bits - the
        # runs must still agree far below the engine tolerance.
        assert np.abs(fast.beliefs - slow.beliefs).max() < 1e-13
        assert fast.iterations == slow.iterations


class TestMaxAbsChange:
    def test_empty_graph_returns_buffer_dtype(self):
        for dtype in (np.float32, np.float64):
            scratch = np.empty((0, 6), dtype=dtype)
            deltas = kernels.max_abs_change_per_query(
                np.empty((0, 6), dtype=dtype), np.empty((0, 6), dtype=dtype),
                scratch, num_classes=3)
            assert deltas.shape == (2,)
            assert deltas.dtype == dtype
            assert not deltas.any()

    @pytest.mark.parametrize("num_queries", [1, 3])
    def test_per_query_maxima_keep_dtype(self, num_queries):
        rng = np.random.default_rng(2)
        new = rng.standard_normal((8, 2 * num_queries)).astype(np.float32)
        old = rng.standard_normal((8, 2 * num_queries)).astype(np.float32)
        deltas = kernels.max_abs_change_per_query(
            new, old, np.empty_like(new), num_classes=2)
        assert deltas.dtype == np.float32
        expected = np.abs(new - old).reshape(8, num_queries, 2)
        assert deltas == pytest.approx(expected.max(axis=(0, 2)))
