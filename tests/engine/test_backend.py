"""The array-backend layer: dtype canonicalisation, registry, capability report."""

from __future__ import annotations

import numpy as np
import pytest
import scipy.sparse as sp

from repro.engine import backend
from repro.exceptions import BackendUnavailableError, UnknownBackendError


class TestCanonicalDtype:
    @pytest.mark.parametrize("spec", ["float32", np.float32,
                                      np.dtype(np.float32)])
    def test_float32_specs_normalise(self, spec):
        assert backend.canonical_dtype(spec) == np.dtype(np.float32)

    @pytest.mark.parametrize("spec", ["float64", np.float64, float,
                                      np.dtype(np.float64)])
    def test_float64_specs_normalise(self, spec):
        assert backend.canonical_dtype(spec) == np.dtype(np.float64)

    @pytest.mark.parametrize("spec", ["float16", np.int32, "complex128",
                                      "bananas"])
    def test_unsupported_dtypes_rejected_listing_choices(self, spec):
        with pytest.raises(UnknownBackendError) as excinfo:
            backend.canonical_dtype(spec)
        message = str(excinfo.value)
        assert "float32" in message and "float64" in message

    def test_dtype_name_is_the_cache_key_component(self):
        assert backend.dtype_name(np.float32) == "float32"
        assert backend.dtype_name("float64") == "float64"

    def test_default_dtype_is_float64(self):
        assert backend.DEFAULT_DTYPE == np.dtype(np.float64)


class TestRegistry:
    def test_numpy_backend_always_available(self):
        instance = backend.get_array_backend("numpy")
        assert instance.name == "numpy"
        # Shared instance: repeated lookups return the same object.
        assert backend.get_array_backend("numpy") is instance

    def test_unknown_backend_rejected_listing_registry(self):
        with pytest.raises(UnknownBackendError) as excinfo:
            backend.get_array_backend("tpu")
        message = str(excinfo.value)
        assert "numpy" in message and "cupy" in message

    def test_unavailable_backend_raises_backend_unavailable(self):
        if backend.CupyBackend.is_available():
            pytest.skip("cupy installed on this host; nothing to gate")
        with pytest.raises(BackendUnavailableError):
            backend.get_array_backend("cupy")

    def test_numpy_backend_roundtrip(self):
        instance = backend.get_array_backend("numpy")
        block = instance.zeros((3, 2), np.dtype(np.float32))
        assert block.dtype == np.float32 and not block.any()
        dense = instance.asarray([[1.0, 2.0]], np.dtype(np.float32))
        assert dense.dtype == np.float32 and dense.flags.c_contiguous
        matrix = sp.csr_matrix(np.eye(3))
        assert instance.csr(matrix, np.dtype(np.float64)) is matrix
        assert instance.csr(matrix, np.dtype(np.float32)).dtype == np.float32
        assert instance.to_numpy(dense) is dense


class TestCapabilityReport:
    def test_report_covers_backends_and_kernels(self):
        rows = {entry["name"]: entry for entry in backend.array_backend_info()}
        assert set(rows) == {"numpy", "cupy", "spmm-inplace", "spmm-numba"}
        assert rows["numpy"]["available"] is True
        assert rows["numpy"]["engine"].startswith("numpy ")
        for entry in rows.values():
            assert entry["dtypes"] == ["float32", "float64"]

    def test_numba_row_reflects_probe(self):
        rows = {entry["name"]: entry for entry in backend.array_backend_info()}
        assert rows["spmm-numba"]["available"] == backend.HAVE_NUMBA
        if not backend.HAVE_NUMBA:
            assert rows["spmm-numba"]["engine"] == "not installed"


class TestNumbaSpmm:
    def test_numba_spmm_unavailable_raises_cleanly(self, monkeypatch):
        monkeypatch.setattr(backend, "HAVE_NUMBA", False)
        matrix = sp.csr_matrix(np.eye(2))
        dense = np.ones((2, 2))
        with pytest.raises(BackendUnavailableError):
            backend.numba_spmm(matrix, dense, np.empty_like(dense))

    def test_numba_spmm_matches_scipy_when_installed(self):
        if not backend.HAVE_NUMBA:
            pytest.skip("numba not installed on this host")
        rng = np.random.default_rng(3)
        matrix = sp.random(30, 30, density=0.2, random_state=5, format="csr")
        for dtype in (np.float64, np.float32):
            typed = matrix.astype(dtype)
            dense = np.ascontiguousarray(rng.standard_normal((30, 4)),
                                         dtype=dtype)
            out = np.empty_like(dense)
            backend.numba_spmm(typed, dense, out)
            expected = typed @ dense
            assert out.dtype == dtype
            assert np.allclose(out, expected, atol=1e-6)
            accumulated = expected.copy()
            backend.numba_spmm(typed, dense, accumulated, accumulate=True)
            assert np.allclose(accumulated, 2 * expected, atol=1e-6)
