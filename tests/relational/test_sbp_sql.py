"""Tests for Algorithm 2 (relational SBP) against the matrix implementation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.coupling import homophily_matrix
from repro.core import sbp
from repro.exceptions import ValidationError
from repro.graphs import Graph, chain_graph
from repro.relational import RelationalSBP, sbp_sql, top_belief_query


class TestRelationalSBP:
    def test_matches_matrix_sbp_on_torus(self, torus, fraud_coupling, torus_explicit):
        sql_result = sbp_sql(torus, fraud_coupling, torus_explicit)
        matrix_result = sbp(torus, fraud_coupling, torus_explicit)
        assert np.allclose(sql_result.beliefs, matrix_result.beliefs, atol=1e-12)
        assert np.array_equal(sql_result.extra["geodesic_numbers"],
                              matrix_result.extra["geodesic_numbers"])

    def test_matches_matrix_sbp_on_random_graph(self, small_random_workload):
        graph, coupling, explicit = small_random_workload
        sql_result = sbp_sql(graph, coupling, explicit)
        matrix_result = sbp(graph, coupling, explicit)
        assert np.allclose(sql_result.beliefs, matrix_result.beliefs, atol=1e-12)

    def test_geodesic_relation_contents(self, torus, fraud_coupling, torus_explicit):
        runner = RelationalSBP(torus, fraud_coupling)
        runner.run(torus_explicit)
        geodesic = {row[0]: row[1] for row in runner.relation_g}
        assert geodesic[0] == 0 and geodesic[3] == 3 and geodesic[7] == 2

    def test_unreachable_nodes_missing_from_relations(self):
        graph = Graph.from_edges([(0, 1)], num_nodes=4)
        explicit = np.zeros((4, 2))
        explicit[0] = [0.1, -0.1]
        runner = RelationalSBP(graph, homophily_matrix(epsilon=0.2))
        result = runner.run(explicit)
        reached = {row[0] for row in runner.relation_g}
        assert reached == {0, 1}
        assert np.allclose(result.beliefs[2:], 0.0)

    def test_rows_processed_per_iteration_recorded(self, torus, fraud_coupling,
                                                   torus_explicit):
        runner = RelationalSBP(torus, fraud_coupling)
        runner.run(torus_explicit)
        # Levels 1, 2, 3 plus the final empty expansion.
        assert len(runner.rows_processed_per_iteration) == 4

    def test_top_belief_query_on_result(self, torus, fraud_coupling, torus_explicit):
        runner = RelationalSBP(torus, fraud_coupling)
        result = runner.run(torus_explicit)
        top = top_belief_query(runner.relation_b)
        matrix_top = result.top_beliefs()
        for node, classes in top.items():
            assert classes == matrix_top[node]

    def test_weighted_graph(self):
        graph = Graph.from_edges([(0, 1, 2.0), (1, 2, 3.0)])
        coupling = homophily_matrix(epsilon=0.2)
        explicit = np.array([[0.1, -0.1], [0.0, 0.0], [0.0, 0.0]])
        sql_result = sbp_sql(graph, coupling, explicit)
        matrix_result = sbp(graph, coupling, explicit)
        assert np.allclose(sql_result.beliefs, matrix_result.beliefs, atol=1e-12)

    def test_validation(self, torus, fraud_coupling):
        with pytest.raises(ValidationError):
            sbp_sql(torus, fraud_coupling, np.zeros((5, 3)))

    def test_no_labels(self):
        graph = chain_graph(3)
        result = sbp_sql(graph, homophily_matrix(), np.zeros((3, 2)))
        assert np.allclose(result.beliefs, 0.0)
