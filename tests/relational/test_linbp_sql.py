"""Tests for Algorithm 1 (relational LinBP) against the matrix implementation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.coupling import homophily_matrix
from repro.core import linbp, linbp_closed_form, linbp_star
from repro.exceptions import ValidationError
from repro.graphs import Graph, chain_graph
from repro.relational import RelationalLinBP, linbp_sql


class TestRelationalLinBP:
    def test_matches_matrix_linbp_with_offset_initialisation(self, torus,
                                                             fraud_coupling,
                                                             torus_explicit):
        """Algorithm 1 initialises B with E, the matrix form with 0.

        Therefore l SQL iterations equal l+1 matrix iterations; both converge
        to the same fixed point.
        """
        sql_result = linbp_sql(torus, fraud_coupling, torus_explicit,
                               num_iterations=4)
        matrix_result = linbp(torus, fraud_coupling, torus_explicit,
                              num_iterations=5)
        assert np.allclose(sql_result.beliefs, matrix_result.beliefs, atol=1e-12)

    def test_converges_to_closed_form(self, torus, fraud_coupling, torus_explicit):
        sql_result = linbp_sql(torus, fraud_coupling, torus_explicit,
                               num_iterations=300, tolerance=1e-12)
        closed = linbp_closed_form(torus, fraud_coupling, torus_explicit)
        assert sql_result.converged
        assert np.allclose(sql_result.beliefs, closed.beliefs, atol=1e-8)

    def test_star_variant_matches_matrix_star(self, torus, fraud_coupling,
                                              torus_explicit):
        sql_result = linbp_sql(torus, fraud_coupling, torus_explicit,
                               num_iterations=4, echo_cancellation=False)
        matrix_result = linbp_star(torus, fraud_coupling, torus_explicit,
                                   num_iterations=5)
        assert np.allclose(sql_result.beliefs, matrix_result.beliefs, atol=1e-12)
        assert "LinBP*" in sql_result.method

    def test_weighted_graph(self):
        graph = Graph.from_edges([(0, 1, 2.0), (1, 2, 0.5)])
        coupling = homophily_matrix(epsilon=0.2)
        explicit = np.array([[0.1, -0.1], [0.0, 0.0], [-0.1, 0.1]])
        sql_result = linbp_sql(graph, coupling, explicit, num_iterations=200,
                               tolerance=1e-13)
        closed = linbp_closed_form(graph, coupling, explicit)
        assert np.allclose(sql_result.beliefs, closed.beliefs, atol=1e-8)

    def test_rows_processed_accounting(self, torus, fraud_coupling, torus_explicit):
        runner = RelationalLinBP(torus, fraud_coupling)
        runner.run(torus_explicit, num_iterations=3)
        assert len(runner.rows_processed_per_iteration) == 3
        assert all(count > 0 for count in runner.rows_processed_per_iteration)

    def test_early_stop_with_tolerance(self, torus, fraud_coupling, torus_explicit):
        result = linbp_sql(torus, fraud_coupling, torus_explicit,
                           num_iterations=500, tolerance=1e-10)
        assert result.converged
        assert result.iterations < 500

    def test_validation(self, torus, fraud_coupling):
        with pytest.raises(ValidationError):
            linbp_sql(torus, fraud_coupling, np.zeros((3, 3)))
        with pytest.raises(ValidationError):
            linbp_sql(torus, fraud_coupling, np.zeros((8, 3)), num_iterations=0)

    def test_unlabeled_graph_stays_zero(self):
        graph = chain_graph(4)
        result = linbp_sql(graph, homophily_matrix(epsilon=0.1), np.zeros((4, 2)),
                           num_iterations=3)
        assert np.allclose(result.beliefs, 0.0)
