"""Unit tests for the relational operators (select, join, aggregate, ...)."""

from __future__ import annotations

import pytest

from repro.exceptions import RelationalError, SchemaError
from repro.relational import Table, aggregate, anti_join, equi_join, project, select, union_all


@pytest.fixture
def edges():
    return Table("A", ("s", "t", "w"),
                 rows=[(0, 1, 1.0), (1, 0, 1.0), (1, 2, 2.0), (2, 1, 2.0)])


@pytest.fixture
def beliefs():
    return Table("B", ("v", "c", "b"),
                 rows=[(0, 0, 0.1), (0, 1, -0.1), (2, 0, -0.2), (2, 1, 0.2)])


class TestSelect:
    def test_equality_filter(self, edges):
        result = select(edges, s=1)
        assert result.num_rows == 2

    def test_predicate_filter(self, edges):
        result = select(edges, predicate=lambda r: r["w"] > 1.5)
        assert result.num_rows == 2

    def test_combined_filters(self, edges):
        result = select(edges, predicate=lambda r: r["w"] > 1.5, s=1)
        assert result.num_rows == 1

    def test_unknown_column_raises(self, edges):
        with pytest.raises(SchemaError):
            select(edges, bogus=1)


class TestProject:
    def test_subset_and_rename(self, edges):
        result = project(edges, ("t", "w"), rename={"t": "target"})
        assert result.columns == ("target", "w")
        assert result.num_rows == edges.num_rows

    def test_distinct(self, edges):
        result = project(edges, ("w",), distinct=True)
        assert sorted(row[0] for row in result) == [1.0, 2.0]

    def test_unknown_column(self, edges):
        with pytest.raises(SchemaError):
            project(edges, ("nope",))


class TestEquiJoin:
    def test_basic_join(self, edges, beliefs):
        joined = equi_join(edges, beliefs, on=[("s", "v")])
        # Source 0 contributes 2 belief rows x 1 edge, source 2 contributes 2 x 1,
        # source 1 has no beliefs.
        assert joined.num_rows == 4
        assert "b" in joined.columns

    def test_column_collision_qualified(self):
        left = Table("L", ("x", "y"), rows=[(1, 2)])
        right = Table("R", ("x", "z"), rows=[(1, 3)])
        joined = equi_join(left, right, on=[("x", "x")])
        assert "R.x" in joined.columns
        assert joined.rows == [(1, 2, 1, 3)]

    def test_multi_column_join(self):
        left = Table("L", ("a", "b"), rows=[(1, 1), (1, 2)])
        right = Table("R", ("c", "d", "val"), rows=[(1, 2, "hit"), (1, 3, "miss")])
        joined = equi_join(left, right, on=[("a", "c"), ("b", "d")])
        assert joined.num_rows == 1
        assert joined.rows[0][-1] == "hit"

    def test_empty_on_rejected(self, edges, beliefs):
        with pytest.raises(RelationalError):
            equi_join(edges, beliefs, on=[])

    def test_join_order_independent_of_build_side(self):
        # Joining a big table with a small one must give the same rows either way.
        big = Table("BIG", ("k", "x"), rows=[(i % 3, i) for i in range(20)])
        small = Table("SMALL", ("k", "y"), rows=[(0, "a"), (1, "b")])
        one = equi_join(big, small, on=[("k", "k")])
        two = equi_join(small, big, on=[("k", "k")])
        assert one.num_rows == two.num_rows


class TestAntiJoin:
    def test_not_exists(self, edges, beliefs):
        result = anti_join(edges, beliefs, on=[("s", "v")])
        assert all(row[0] == 1 for row in result)

    def test_with_right_predicate(self):
        nodes = Table("N", ("v",), rows=[(0,), (1,), (2,)])
        geodesic = Table("G", ("v", "g"), rows=[(0, 0), (1, 5)])
        # Exclude nodes that already have a geodesic number smaller than 3.
        result = anti_join(nodes, geodesic, on=[("v", "v")],
                           right_predicate=lambda r: r["g"] < 3)
        assert sorted(row[0] for row in result) == [1, 2]

    def test_empty_on_rejected(self, edges, beliefs):
        with pytest.raises(RelationalError):
            anti_join(edges, beliefs, on=[])


class TestAggregate:
    def test_group_by_sum(self, edges):
        result = aggregate(edges, group_by=("s",),
                           aggregations={"total": ("sum", lambda r: r["w"])})
        totals = {row[0]: row[1] for row in result}
        assert totals == {0: 1.0, 1: 3.0, 2: 2.0}

    def test_expression_aggregate(self, edges):
        result = aggregate(edges, group_by=("s",),
                           aggregations={"sq": ("sum", lambda r: r["w"] ** 2)})
        totals = {row[0]: row[1] for row in result}
        assert totals[1] == pytest.approx(5.0)

    def test_min_max_count_avg(self, edges):
        result = aggregate(edges, group_by=(),
                           aggregations={
                               "lo": ("min", lambda r: r["w"]),
                               "hi": ("max", lambda r: r["w"]),
                               "n": ("count", lambda r: 1),
                               "mean": ("avg", lambda r: r["w"]),
                           })
        assert result.rows == [(1.0, 2.0, 4, 1.5)]

    def test_unknown_aggregate_rejected(self, edges):
        with pytest.raises(RelationalError):
            aggregate(edges, group_by=("s",),
                      aggregations={"x": ("median", lambda r: r["w"])})

    def test_unknown_group_column_rejected(self, edges):
        with pytest.raises(SchemaError):
            aggregate(edges, group_by=("missing",),
                      aggregations={"x": ("sum", lambda r: r["w"])})


class TestUnionAll:
    def test_bag_semantics(self):
        a = Table("A", ("x",), rows=[(1,), (2,)])
        b = Table("B", ("x",), rows=[(2,)])
        assert union_all([a, b]).num_rows == 3

    def test_arity_mismatch_rejected(self):
        a = Table("A", ("x",), rows=[(1,)])
        b = Table("B", ("x", "y"), rows=[(1, 2)])
        with pytest.raises(SchemaError):
            union_all([a, b])

    def test_empty_input_rejected(self):
        with pytest.raises(RelationalError):
            union_all([])
