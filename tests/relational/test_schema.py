"""Unit tests for the relational schema helpers (A, E, H, D, H2, top beliefs)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.coupling import fraud_matrix, homophily_matrix
from repro.exceptions import ValidationError
from repro.graphs import Graph
from repro.relational import (
    Table,
    adjacency_table,
    beliefs_to_matrix,
    coupling_squared_table,
    coupling_table,
    degree_table,
    explicit_belief_table,
    geodesic_to_vector,
    top_belief_query,
)


class TestBaseRelations:
    def test_adjacency_table_has_both_directions(self):
        graph = Graph.from_edges([(0, 1, 2.0)])
        table = adjacency_table(graph)
        assert sorted(table.rows) == [(0, 1, 2.0), (1, 0, 2.0)]

    def test_explicit_belief_table_skips_zero_rows(self):
        explicit = np.zeros((3, 2))
        explicit[1] = [0.1, -0.1]
        table = explicit_belief_table(explicit)
        assert table.num_rows == 2
        assert all(row[0] == 1 for row in table)

    def test_explicit_belief_table_requires_2d(self):
        with pytest.raises(ValidationError):
            explicit_belief_table(np.zeros(3))

    def test_coupling_table_contents(self):
        coupling = homophily_matrix(epsilon=0.5)
        table = coupling_table(coupling)
        values = {(row[0], row[1]): row[2] for row in table}
        assert values[(0, 0)] == pytest.approx(0.15)
        assert values[(0, 1)] == pytest.approx(-0.15)

    def test_degree_table_uses_squared_weights(self):
        graph = Graph.from_edges([(0, 1, 2.0), (0, 2, 3.0)])
        degrees = {row[0]: row[1] for row in degree_table(adjacency_table(graph))}
        assert degrees[0] == pytest.approx(13.0)
        assert degrees[1] == pytest.approx(4.0)

    def test_coupling_squared_matches_matrix_square(self):
        coupling = fraud_matrix(epsilon=0.3)
        squared_relation = coupling_squared_table(coupling_table(coupling))
        produced = np.zeros((3, 3))
        for c1, c2, h in squared_relation.rows:
            produced[c1, c2] = h
        assert np.allclose(produced, coupling.residual_squared, atol=1e-12)
        assert squared_relation.columns == ("c1", "c2", "h")


class TestConversions:
    def test_beliefs_roundtrip(self):
        explicit = np.zeros((4, 3))
        explicit[0] = [0.1, -0.05, -0.05]
        explicit[2] = [-0.2, 0.1, 0.1]
        table = explicit_belief_table(explicit)
        assert np.allclose(beliefs_to_matrix(table, 4, 3), explicit)

    def test_geodesic_to_vector_defaults_to_minus_one(self):
        table = Table("G", ("v", "g"), rows=[(0, 0), (2, 3)])
        assert geodesic_to_vector(table, 4).tolist() == [0, -1, 3, -1]


class TestTopBeliefQuery:
    def test_unique_maxima(self):
        table = Table("B", ("v", "c", "b"),
                      rows=[(0, 0, 0.5), (0, 1, -0.5), (1, 0, -0.1), (1, 1, 0.4)])
        assert top_belief_query(table) == {0: {0}, 1: {1}}

    def test_ties_returned_together(self):
        table = Table("B", ("v", "c", "b"),
                      rows=[(0, 0, 0.5), (0, 1, 0.5), (0, 2, -1.0)])
        assert top_belief_query(table) == {0: {0, 1}}

    def test_missing_nodes_absent(self):
        table = Table("B", ("v", "c", "b"), rows=[(3, 0, 0.1), (3, 1, -0.1)])
        result = top_belief_query(table)
        assert set(result) == {3}
