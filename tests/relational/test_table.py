"""Unit tests for the relational Table storage layer."""

from __future__ import annotations

import pytest

from repro.exceptions import SchemaError, ValidationError
from repro.relational import Table


class TestTableBasics:
    def test_construction_and_len(self):
        table = Table("T", ("a", "b"), rows=[(1, 2), (3, 4)])
        assert len(table) == 2
        assert table.num_rows == 2
        assert table.columns == ("a", "b")

    def test_empty_schema_rejected(self):
        with pytest.raises(SchemaError):
            Table("T", ())

    def test_duplicate_columns_rejected(self):
        with pytest.raises(SchemaError):
            Table("T", ("a", "a"))

    def test_column_index_and_values(self):
        table = Table("T", ("a", "b"), rows=[(1, "x"), (2, "y")])
        assert table.column_index("b") == 1
        assert table.column_values("a") == [1, 2]

    def test_unknown_column_raises(self):
        table = Table("T", ("a",))
        with pytest.raises(SchemaError):
            table.column_index("missing")

    def test_iteration_and_rows_copy(self):
        table = Table("T", ("a",), rows=[(1,), (2,)])
        assert list(table) == [(1,), (2,)]
        rows = table.rows
        rows.append((3,))
        assert len(table) == 2  # external mutation does not affect the table

    def test_to_dicts(self):
        table = Table("T", ("a", "b"), rows=[(1, 2)])
        assert table.to_dicts() == [{"a": 1, "b": 2}]

    def test_repr(self):
        assert "Table" in repr(Table("T", ("a",)))


class TestTableMutation:
    def test_insert_rows_arity_checked(self):
        table = Table("T", ("a", "b"))
        with pytest.raises(ValidationError):
            table.insert_rows([(1,)])

    def test_insert_dicts(self):
        table = Table("T", ("a", "b"))
        table.insert_dicts([{"a": 1, "b": 2}, {"b": 4, "a": 3}])
        assert table.rows == [(1, 2), (3, 4)]

    def test_upsert_replaces_existing_key(self):
        table = Table("B", ("v", "c", "b"), rows=[(0, 0, 1.0), (0, 1, 2.0)])
        table.upsert([(0, 0, 9.0), (1, 0, 5.0)], key_columns=("v", "c"))
        assert sorted(table.rows) == [(0, 0, 9.0), (0, 1, 2.0), (1, 0, 5.0)]

    def test_upsert_arity_checked(self):
        table = Table("T", ("a", "b"))
        with pytest.raises(ValidationError):
            table.upsert([(1,)], key_columns=("a",))

    def test_delete_where(self):
        table = Table("T", ("a",), rows=[(1,), (2,), (3,)])
        deleted = table.delete_where(lambda row: row["a"] > 1)
        assert deleted == 2
        assert table.rows == [(1,)]

    def test_clear(self):
        table = Table("T", ("a",), rows=[(1,)])
        table.clear()
        assert len(table) == 0
        assert table.columns == ("a",)

    def test_copy_is_independent(self):
        table = Table("T", ("a",), rows=[(1,)])
        duplicate = table.copy("T2")
        duplicate.insert_rows([(2,)])
        assert len(table) == 1
        assert duplicate.name == "T2"
