"""Tests for Algorithms 3 and 4 (relational incremental SBP updates)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.coupling import homophily_matrix, synthetic_residual_matrix
from repro.core import sbp
from repro.exceptions import ValidationError
from repro.graphs import Graph, chain_graph, random_graph
from repro.relational import (
    RelationalSBP,
    add_edges_sql,
    add_explicit_beliefs_sql)


@pytest.fixture
def workload():
    graph = random_graph(50, 0.10, seed=13)
    coupling = synthetic_residual_matrix(epsilon=0.5)
    rng = np.random.default_rng(3)
    explicit = np.zeros((50, 3))
    for node in rng.choice(50, size=8, replace=False):
        values = rng.uniform(-0.1, 0.1, size=2)
        explicit[node] = [values[0], values[1], -values.sum()]
    return graph, coupling, explicit


class TestAddExplicitBeliefs:
    def test_matches_recomputation(self, workload):
        graph, coupling, explicit = workload
        labeled = np.nonzero(np.any(explicit != 0.0, axis=1))[0]
        keep, add = labeled[:4], labeled[4:]
        initial = explicit.copy()
        initial[add] = 0.0
        update = np.zeros_like(explicit)
        update[add] = explicit[add]
        runner = RelationalSBP(graph, coupling)
        runner.run(initial)
        incremental = add_explicit_beliefs_sql(runner, update)
        scratch = sbp(graph, coupling, explicit)
        assert np.allclose(incremental.beliefs, scratch.beliefs, atol=1e-10)
        geodesic = {row[0]: row[1] for row in runner.relation_g}
        expected = scratch.extra["geodesic_numbers"]
        for node, value in geodesic.items():
            assert value == expected[node]

    def test_update_changes_existing_label(self):
        graph = chain_graph(5)
        coupling = homophily_matrix(epsilon=0.2)
        explicit = np.zeros((5, 2))
        explicit[0] = [0.1, -0.1]
        runner = RelationalSBP(graph, coupling)
        runner.run(explicit)
        update = np.zeros((5, 2))
        update[0] = [-0.1, 0.1]  # flip the label of node 0
        result = add_explicit_beliefs_sql(runner, update)
        scratch = sbp(graph, coupling, update)
        assert np.allclose(result.beliefs, scratch.beliefs, atol=1e-12)

    def test_empty_update_is_noop(self, workload):
        graph, coupling, explicit = workload
        runner = RelationalSBP(graph, coupling)
        before = runner.run(explicit)
        after = add_explicit_beliefs_sql(runner, np.zeros_like(explicit))
        assert np.allclose(before.beliefs, after.beliefs)
        assert after.extra["nodes_updated"] == 0

    def test_requires_run_first(self, workload):
        graph, coupling, explicit = workload
        runner = RelationalSBP(graph, coupling)
        with pytest.raises(ValidationError):
            add_explicit_beliefs_sql(runner, explicit)

    def test_shape_checked(self, workload):
        graph, coupling, explicit = workload
        runner = RelationalSBP(graph, coupling)
        runner.run(explicit)
        with pytest.raises(ValidationError):
            add_explicit_beliefs_sql(runner, np.zeros((3, 3)))

    def test_nodes_updated_smaller_than_full_graph_for_local_update(self, workload):
        graph, coupling, explicit = workload
        labeled = np.nonzero(np.any(explicit != 0.0, axis=1))[0]
        initial = explicit.copy()
        initial[labeled[-1]] = 0.0
        update = np.zeros_like(explicit)
        update[labeled[-1]] = explicit[labeled[-1]]
        runner = RelationalSBP(graph, coupling)
        runner.run(initial)
        result = add_explicit_beliefs_sql(runner, update)
        assert 0 < result.extra["nodes_updated"] <= graph.num_nodes


class TestAddEdges:
    def test_matches_recomputation(self, workload):
        graph, coupling, explicit = workload
        rng = np.random.default_rng(17)
        new_edges = []
        while len(new_edges) < 6:
            source, target = rng.integers(0, graph.num_nodes, size=2)
            if source != target and not graph.has_edge(int(source), int(target)):
                new_edges.append((int(source), int(target)))
        runner = RelationalSBP(graph, coupling)
        runner.run(explicit)
        incremental = add_edges_sql(runner, new_edges)
        scratch = sbp(graph.with_edges_added(new_edges), coupling, explicit)
        assert np.allclose(incremental.beliefs, scratch.beliefs, atol=1e-10)

    def test_connecting_new_component(self):
        graph = Graph.from_edges([(0, 1), (2, 3)], num_nodes=4)
        coupling = homophily_matrix(epsilon=0.2)
        explicit = np.zeros((4, 2))
        explicit[0] = [0.1, -0.1]
        runner = RelationalSBP(graph, coupling)
        runner.run(explicit)
        result = add_edges_sql(runner, [(1, 2)])
        scratch = sbp(graph.with_edges_added([(1, 2)]), coupling, explicit)
        assert np.allclose(result.beliefs, scratch.beliefs, atol=1e-12)

    def test_empty_update_is_noop(self, workload):
        graph, coupling, explicit = workload
        runner = RelationalSBP(graph, coupling)
        before = runner.run(explicit)
        after = add_edges_sql(runner, [])
        assert np.allclose(before.beliefs, after.beliefs)

    def test_requires_run_first(self, workload):
        graph, coupling, explicit = workload
        runner = RelationalSBP(graph, coupling)
        with pytest.raises(ValidationError):
            add_edges_sql(runner, [(0, 1)])

    def test_weighted_edges(self):
        graph = Graph.from_edges([(0, 1)], num_nodes=3)
        coupling = homophily_matrix(epsilon=0.2)
        explicit = np.zeros((3, 2))
        explicit[0] = [0.1, -0.1]
        runner = RelationalSBP(graph, coupling)
        runner.run(explicit)
        result = add_edges_sql(runner, [(1, 2, 2.0)])
        scratch = sbp(graph.with_edges_added([(1, 2, 2.0)]), coupling, explicit)
        assert np.allclose(result.beliefs, scratch.beliefs, atol=1e-12)
