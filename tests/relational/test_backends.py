"""Tests for the pluggable SQL execution backends (selection, state, I/O).

The differential property suite (``tests/property``) proves the backends
compute the right numbers; this module covers everything around the
numbers: registry lookup and capability gating, the repro.exceptions
error surface, transaction rollback on mid-sweep failure, persistence and
reopening of disk-backed databases, and the out-of-core path that labels a
streamed graph without ever building a dense belief matrix in Python.
"""

from __future__ import annotations

import sqlite3

import numpy as np
import pytest

from repro import BeliefMatrix
from repro.coupling.matrices import CouplingMatrix
from repro.engine.batch import run_batch
from repro.engine.plan import get_plan
from repro.exceptions import (
    BackendStateError,
    BackendUnavailableError,
    ReproError,
    UnknownBackendError,
    ValidationError,
)
from repro.graphs import Graph
from repro.relational import open_backend, run_propagation
from repro.relational.backends import (
    BACKENDS,
    available_backends,
    backend_info,
    get_backend,
)


@pytest.fixture
def problem():
    """A small weighted graph with a convergent coupling and two labels."""
    graph = Graph.from_edges([(0, 1), (0, 2), (1, 2), (2, 3), (3, 4)])
    coupling = CouplingMatrix.from_stochastic(
        np.array([[0.8, 0.2], [0.2, 0.8]]), epsilon=0.3)
    explicit = BeliefMatrix.from_labels({0: 0, 4: 1}, num_nodes=5,
                                        num_classes=2, magnitude=0.1)
    return graph, coupling, explicit.residuals


class TestRegistry:
    def test_python_and_sqlite_always_available(self):
        assert "python" in available_backends()
        assert "sqlite" in available_backends()

    def test_unknown_backend_raises_with_known_names(self):
        with pytest.raises(UnknownBackendError) as excinfo:
            get_backend("postgres")
        message = str(excinfo.value)
        for name in BACKENDS:
            assert name in message
        # Callers should also be able to catch it generically.
        assert isinstance(excinfo.value, ReproError)
        assert isinstance(excinfo.value, ValueError)

    def test_backend_info_reports_every_backend(self):
        report = {entry["name"]: entry for entry in backend_info()}
        assert set(report) == set(BACKENDS)
        assert report["python"]["kind"] == "in-memory"
        assert report["sqlite"]["kind"] == "sql"
        assert report["sqlite"]["available"] is True
        assert "SQLite" in report["sqlite"]["engine"]

    def test_duckdb_missing_is_an_importerror_with_guidance(self, problem):
        if BACKENDS["duckdb"].is_available():
            pytest.skip("duckdb installed; the gating path cannot be hit")
        graph, coupling, explicit = problem
        backend = get_backend("duckdb")  # registry lookup must not import
        with pytest.raises(BackendUnavailableError) as excinfo:
            backend.connect()
        assert isinstance(excinfo.value, ImportError)
        assert "duckdb" in str(excinfo.value)
        assert "sqlite" in str(excinfo.value)  # points at the fallback

    def test_open_backend_is_the_engine_entry_point(self, problem):
        graph, coupling, explicit = problem
        with open_backend("sqlite") as backend:
            backend.load_graph(graph, coupling, explicit)
            result = backend.run_linbp()
        assert result.converged

    def test_python_backend_rejects_disk_database(self, tmp_path):
        with pytest.raises(ValidationError):
            get_backend("python", database=str(tmp_path / "nope.db"))


class TestErrorSurface:
    @pytest.mark.parametrize("name", ["python", "sqlite"])
    def test_unloaded_backend_raises_state_error(self, name):
        backend = get_backend(name)
        with pytest.raises(BackendStateError):
            backend.run_linbp()
        with pytest.raises(BackendStateError):
            backend.run_sbp()
        with pytest.raises(BackendStateError):
            backend.fetch_beliefs()
        backend.close()

    @pytest.mark.parametrize("name", ["python", "sqlite"])
    def test_bad_explicit_shape_raises_validation_error(self, name, problem):
        graph, coupling, _ = problem
        with get_backend(name) as backend:
            with pytest.raises(ValidationError):
                backend.load_graph(graph, coupling, np.zeros((3, 2)))

    @pytest.mark.parametrize("name", ["python", "sqlite"])
    def test_bad_iteration_arguments(self, name, problem):
        graph, coupling, explicit = problem
        with get_backend(name) as backend:
            backend.load_graph(graph, coupling, explicit)
            with pytest.raises(ValidationError):
                backend.run_linbp(max_iterations=0)
            with pytest.raises(ValidationError):
                backend.run_linbp(tolerance=0.0)
            with pytest.raises(ValidationError):
                backend.run_linbp(num_iterations=0)

    def test_run_propagation_rejects_unknown_method(self, problem):
        graph, coupling, explicit = problem
        with pytest.raises(ValidationError):
            run_propagation(graph, coupling, explicit, method="bp",
                            backend="sqlite")

    def test_run_propagation_dispatches_all_methods(self, problem):
        graph, coupling, explicit = problem
        for method in ("linbp", "linbp*", "sbp"):
            result = run_propagation(graph, coupling, explicit,
                                     method=method, backend="sqlite")
            assert result.beliefs.shape == (5, 2)


class _FailingCursor:
    """Proxy that raises once a chosen statement has run ``fail_at`` times."""

    def __init__(self, cursor, state):
        self._cursor = cursor
        self._state = state

    def execute(self, sql, parameters=()):
        if sql.lstrip().startswith("UPDATE beliefs"):
            self._state["updates"] += 1
            if self._state["updates"] >= self._state["fail_at"]:
                raise sqlite3.OperationalError("synthetic mid-sweep failure")
        return self._cursor.execute(sql, parameters)

    def __getattr__(self, name):
        return getattr(self._cursor, name)


class TestTransactions:
    def test_mid_sweep_failure_rolls_back_to_previous_state(self, problem,
                                                            monkeypatch):
        """A sweep that dies mid-iteration must not leave partial beliefs."""
        graph, coupling, explicit = problem
        backend = get_backend("sqlite")
        backend.load_graph(graph, coupling, explicit)
        first = backend.run_linbp()
        before = backend.fetch_beliefs()
        # Fail the *second* UPDATE of the next run: iteration one commits
        # nothing (the run is a single transaction), so the database must
        # come back exactly as the first run left it.
        state = {"updates": 0, "fail_at": 2}
        real_cursor = backend._cursor
        monkeypatch.setattr(
            backend, "_cursor",
            lambda: _FailingCursor(real_cursor(), state))
        with pytest.raises(sqlite3.OperationalError):
            backend.run_linbp()
        monkeypatch.undo()
        after = backend.fetch_beliefs()
        np.testing.assert_array_equal(after, before)
        # The backend stays usable: a fresh run succeeds and agrees.
        again = backend.run_linbp()
        assert again.converged
        np.testing.assert_allclose(again.beliefs, first.beliefs,
                                   rtol=0, atol=1e-12)
        backend.close()

    def test_failed_load_leaves_previous_graph_intact(self, problem,
                                                      monkeypatch):
        graph, coupling, explicit = problem
        backend = get_backend("sqlite")
        backend.load_graph(graph, coupling, explicit)
        counts_before = backend.table_counts()

        def broken_edges():
            yield (0, 1, 1.0)
            raise RuntimeError("stream died")

        with pytest.raises(RuntimeError):
            backend.load_stream(broken_edges(), [], coupling, graph.num_nodes)
        assert backend.table_counts() == counts_before
        assert backend.run_linbp().converged
        backend.close()


class TestPersistence:
    def test_reopening_a_persisted_database_restores_state(self, problem,
                                                           tmp_path):
        graph, coupling, explicit = problem
        path = str(tmp_path / "graph.db")
        with get_backend("sqlite", database=path) as backend:
            backend.load_graph(graph, coupling, explicit)
            original = backend.run_linbp()
        # A brand-new backend over the same file needs no load_graph().
        with get_backend("sqlite", database=path) as reopened:
            assert reopened.is_loaded
            assert reopened.num_nodes == graph.num_nodes
            assert reopened.num_classes == coupling.num_classes
            np.testing.assert_array_equal(reopened.fetch_beliefs(),
                                          original.beliefs)
            rerun = reopened.run_linbp()
        assert rerun.iterations == original.iterations
        np.testing.assert_allclose(rerun.beliefs, original.beliefs,
                                   rtol=0, atol=1e-12)

    def test_reopening_an_empty_database_is_not_loaded(self, tmp_path):
        path = str(tmp_path / "empty.db")
        sqlite3.connect(path).close()
        with get_backend("sqlite", database=path) as backend:
            assert not backend.is_loaded
            with pytest.raises(BackendStateError):
                backend.run_linbp()


class TestOutOfCore:
    def test_streamed_graph_labels_without_dense_beliefs(self, problem,
                                                         tmp_path):
        """The out-of-core demo: stream edges to disk, label via SQL only.

        The graph goes into an on-disk SQLite database through generator
        streams (never an in-memory Graph on the backend side), the sweep
        runs with ``materialize=False`` (no dense ``n × k`` ndarray is ever
        fetched), and the labels come back through the in-database argmax
        query.  They must equal the dense engine's ``hard_labels()``.
        """
        graph, coupling, explicit = problem
        reference = run_batch(get_plan(graph, coupling), [explicit])[0]
        expected = {node: int(label)
                    for node, label in enumerate(reference.hard_labels())
                    if label >= 0}

        def edge_stream():
            for edge in graph.edges():
                yield edge.source, edge.target, edge.weight

        def explicit_stream():
            for node, row in enumerate(explicit):
                if np.any(row != 0.0):
                    for cls, value in enumerate(row):
                        yield node, cls, float(value)

        path = str(tmp_path / "streamed.db")
        with get_backend("sqlite", database=path) as backend:
            backend.load_stream(edge_stream(), explicit_stream(), coupling,
                                graph.num_nodes)
            result = backend.run_linbp(materialize=False)
            assert result.beliefs.shape == (0, coupling.num_classes)
            assert result.converged == reference.converged
            assert result.iterations == reference.iterations
            assert dict(backend.top_labels()) == expected
            streamed = {(v, c): b for v, c, b in backend.iter_beliefs()}
        for (node, cls), belief in streamed.items():
            assert abs(belief - reference.beliefs[node, cls]) < 1e-10
