"""Service-layer dtype/precision routing: params keys, extras, sharded path."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import linbp
from repro.coupling import synthetic_residual_matrix
from repro.engine import clear_plan_cache
from repro.exceptions import UnknownBackendError, ValidationError
from repro.graphs import random_graph
from repro.service import PropagationService, QuerySpec


@pytest.fixture(autouse=True)
def fresh_cache():
    clear_plan_cache()
    yield
    clear_plan_cache()


def _workload(num_nodes: int = 40, seed: int = 11):
    graph = random_graph(num_nodes, 0.12, seed=7)
    coupling = synthetic_residual_matrix(epsilon=0.05)
    rng = np.random.default_rng(seed)
    explicit = np.zeros((graph.num_nodes, 3))
    for node in rng.choice(graph.num_nodes, size=6, replace=False):
        values = rng.uniform(-0.1, 0.1, size=2)
        explicit[node] = [values[0], values[1], -values.sum()]
    return graph, coupling, explicit


def _service(graph, **kwargs):
    service = PropagationService(window_seconds=0.0, **kwargs)
    service.register_graph("g", graph)
    return service


class TestStrictRouting:
    def test_default_query_is_strict_float64(self):
        graph, coupling, explicit = _workload()
        service = _service(graph)
        result = service.query("g", coupling, explicit)
        assert result.beliefs.dtype == np.float64
        sequential = linbp(graph, coupling, explicit)
        assert np.abs(result.beliefs - sequential.beliefs).max() < 1e-10

    def test_strict_float32_runs_narrow_and_stays_close(self):
        graph, coupling, explicit = _workload()
        service = _service(graph)
        narrow = service.query("g", coupling, explicit,
                               QuerySpec(dtype="float32"))
        exact = service.query("g", coupling, explicit)
        assert narrow.beliefs.dtype == np.float32
        assert np.abs(exact.beliefs
                      - narrow.beliefs.astype(np.float64)).max() < 1e-5

    def test_dtypes_do_not_share_cached_results(self):
        graph, coupling, explicit = _workload()
        service = _service(graph)
        exact = service.query("g", coupling, explicit)
        narrow = service.query("g", coupling, explicit,
                               QuerySpec(dtype=np.float32))
        # A float32 answer must never be served for a float64 request.
        assert exact.beliefs.dtype == np.float64
        assert narrow.beliefs.dtype == np.float32

    def test_unknown_dtype_and_precision_rejected(self):
        graph, coupling, explicit = _workload()
        service = _service(graph)
        with pytest.raises(UnknownBackendError):
            service.query("g", coupling, explicit,
                          QuerySpec(dtype="int32"))
        with pytest.raises(ValidationError):
            service.query("g", coupling, explicit,
                          QuerySpec(precision="fast"))


class TestAutoRouting:
    def test_auto_certifies_float32_at_loose_tolerance(self):
        graph, coupling, explicit = _workload()
        service = _service(graph)
        result = service.query("g", coupling, explicit,
                               QuerySpec(precision="auto",
                                         tolerance=1e-3))
        payload = result.extra["precision"]
        assert payload["certified"] is True
        assert payload["dtype"] == "float32"
        assert result.beliefs.dtype == np.float32

    def test_auto_falls_back_to_float64_at_default_tolerance(self):
        graph, coupling, explicit = _workload()
        service = _service(graph)
        result = service.query("g", coupling, explicit,
                               QuerySpec(precision="auto"))
        payload = result.extra["precision"]
        assert payload["certified"] is False
        assert payload["dtype"] == "float64"
        assert result.beliefs.dtype == np.float64
        exact = service.query("g", coupling, explicit)
        assert np.abs(result.beliefs - exact.beliefs).max() < 1e-9

    def test_auto_sbp_attaches_decision(self):
        graph, coupling, explicit = _workload()
        service = _service(graph)
        result = service.query("g", coupling, explicit,
                               QuerySpec(method="sbp", precision="auto",
                                         tolerance=1e-3))
        payload = result.extra["precision"]
        assert payload["certified"] is True
        assert result.beliefs.dtype == np.float32


class TestShardedRouting:
    def test_sharded_strict_float32(self):
        graph, coupling, explicit = _workload(num_nodes=120)
        service = _service(graph, shards=2, shard_executor="sequential")
        result = service.query("g", coupling, explicit,
                               QuerySpec(dtype="float32"))
        assert result.beliefs.dtype == np.float32

    def test_sharded_auto_certifies_and_attaches_decision(self):
        graph, coupling, explicit = _workload(num_nodes=120)
        service = _service(graph, shards=2, shard_executor="sequential")
        result = service.query("g", coupling, explicit,
                               QuerySpec(precision="auto",
                                         tolerance=1e-3))
        payload = result.extra["precision"]
        assert payload["certified"] is True
        assert result.beliefs.dtype == np.float32

    def test_sharded_auto_fallback_matches_unsharded_exact(self):
        graph, coupling, explicit = _workload(num_nodes=120)
        service = _service(graph, shards=2, shard_executor="sequential")
        result = service.query("g", coupling, explicit,
                               QuerySpec(precision="auto"))
        assert result.extra["precision"]["certified"] is False
        assert result.beliefs.dtype == np.float64
        sequential = linbp(graph, coupling, explicit)
        assert np.abs(result.beliefs - sequential.beliefs).max() < 1e-9
