"""Tests for the ``repro serve`` line protocol over stdin and TCP."""

from __future__ import annotations

import io
import json
import socket
import threading

import pytest

from repro.service import LineProtocolServer, ServiceSession, serve_stream


def _request(**fields) -> str:
    return json.dumps(fields)


@pytest.fixture
def session():
    return ServiceSession(window_seconds=0.0)


@pytest.fixture
def loaded_session(session):
    """A session with a 5-node chain graph and a 2-class coupling loaded."""
    for line in (
        _request(op="load_graph", name="g",
                 edges=[[0, 1], [1, 2], [2, 3], [3, 4]]),
        _request(op="load_coupling", name="h",
                 stochastic=[[0.8, 0.2], [0.2, 0.8]], epsilon=0.3,
                 classes=["left", "right"]),
    ):
        response, keep_running = session.handle_line(line)
        assert response.startswith("ok"), response
        assert keep_running
    return session


class TestHandleLine:
    def test_load_graph_reports_shape_and_version(self, session):
        response, _ = session.handle_line(
            _request(op="load_graph", name="g", edges=[[0, 1], [1, 2, 0.5]]))
        assert response == "ok graph name=g nodes=3 edges=2 version=0"

    def test_load_coupling_residual_form(self, session):
        response, _ = session.handle_line(
            _request(op="load_coupling", name="h",
                     residual=[[0.1, -0.1], [-0.1, 0.1]]))
        assert response == "ok coupling name=h classes=2"

    def test_query_reports_labels(self, loaded_session):
        response, _ = loaded_session.handle_line(
            _request(op="query", graph="g", coupling="h",
                     beliefs=[[0, 0, 0.1], [4, 1, 0.1]]))
        assert response.startswith("ok query method=LinBP")
        assert "converged=true" in response
        assert "0:left" in response and "4:right" in response

    def test_query_can_return_raw_beliefs(self, loaded_session):
        response, _ = loaded_session.handle_line(
            _request(op="query", graph="g", coupling="h", method="sbp",
                     beliefs=[[0, 0, 0.1]], return_beliefs=True))
        assert response.startswith("ok query method=SBP")
        assert "beliefs=0:0.1|0" in response

    def test_query_limit_truncates(self, loaded_session):
        response, _ = loaded_session.handle_line(
            _request(op="query", graph="g", coupling="h",
                     beliefs=[[0, 0, 0.1], [4, 1, 0.1]], limit=1))
        assert "..." in response

    def test_view_update_read_view_roundtrip(self, loaded_session):
        response, _ = loaded_session.handle_line(
            _request(op="view", graph="g", name="w", coupling="h",
                     method="sbp", beliefs=[[0, 0, 0.1]]))
        assert response.startswith("ok view graph=g name=w method=SBP")
        response, _ = loaded_session.handle_line(
            _request(op="update", graph="g", edges=[[0, 4]]))
        assert response == "ok update graph=g version=1"
        response, _ = loaded_session.handle_line(
            _request(op="read_view", graph="g", name="w"))
        assert response.startswith("ok read_view graph=g name=w beliefs=")

    def test_update_with_beliefs_uses_coupling_classes(self, loaded_session):
        loaded_session.handle_line(
            _request(op="view", graph="g", name="w", coupling="h",
                     beliefs=[[0, 0, 0.1]]))
        response, _ = loaded_session.handle_line(
            _request(op="update", graph="g", coupling="h",
                     beliefs=[[2, 1, 0.1]]))
        assert response == "ok update graph=g version=1"

    def test_stats_line(self, loaded_session):
        loaded_session.handle_line(
            _request(op="query", graph="g", coupling="h",
                     beliefs=[[0, 0, 0.1]]))
        response, _ = loaded_session.handle_line(_request(op="stats"))
        assert response.startswith("ok stats queries=1")
        assert "cache_hits=" in response

    def test_update_beliefs_infers_classes_from_views(self, loaded_session):
        # A second coupling with a different class count is loaded; the
        # graph's views (built on the 2-class coupling) break the tie, so
        # the update needs no explicit 'coupling' field.
        loaded_session.handle_line(
            _request(op="load_coupling", name="h3",
                     residual=[[0.2, -0.1, -0.1], [-0.1, 0.2, -0.1],
                               [-0.1, -0.1, 0.2]]))
        loaded_session.handle_line(
            _request(op="view", graph="g", name="w", coupling="h",
                     beliefs=[[0, 0, 0.1]]))
        response, _ = loaded_session.handle_line(
            _request(op="update", graph="g", beliefs=[[2, 1, 0.1]]))
        assert response == "ok update graph=g version=1"

    def test_unexpected_handler_error_yields_one_error_line(self, session,
                                                            monkeypatch):
        def explode():
            raise RuntimeError("boom")

        monkeypatch.setattr(session.service, "stats", explode)
        response, keep_running = session.handle_line(_request(op="stats"))
        assert response == "error internal: RuntimeError: boom"
        assert keep_running

    def test_ping_and_shutdown(self, session):
        assert session.handle_line(_request(op="ping")) == ("ok pong", True)
        assert session.handle_line(_request(op="shutdown")) == ("ok bye", False)

    def test_protocol_errors_are_single_lines(self, loaded_session):
        cases = [
            "not json",
            json.dumps(["a", "list"]),
            _request(op="no_such_op"),
            _request(op="query", graph="nope", coupling="h", beliefs=[]),
            _request(op="query", graph="g", coupling="nope", beliefs=[]),
            _request(op="query", graph="g", coupling="h",
                     beliefs=[[99, 0, 0.1]]),
            _request(op="load_coupling", name="x"),
            _request(op="query", graph="g"),
        ]
        for line in cases:
            response, keep_running = loaded_session.handle_line(line)
            assert response.startswith("error"), (line, response)
            assert "\n" not in response
            assert keep_running


class TestStreamTransport:
    def test_serve_stream_until_shutdown(self, tmp_path):
        lines = "\n".join([
            _request(op="load_graph", name="g", edges=[[0, 1], [1, 2]]),
            _request(op="load_coupling", name="h",
                     stochastic=[[0.9, 0.1], [0.1, 0.9]], epsilon=0.2),
            "",  # blank lines are ignored
            _request(op="query", graph="g", coupling="h",
                     beliefs=[[0, 0, 0.1]]),
            _request(op="shutdown"),
            _request(op="ping"),  # never reached
        ])
        out = io.StringIO()
        handled = serve_stream(ServiceSession(window_seconds=0.0),
                               io.StringIO(lines), out)
        responses = out.getvalue().splitlines()
        assert handled == 4
        assert responses[0].startswith("ok graph")
        assert responses[-1] == "ok bye"

    def test_serve_stream_stops_at_eof(self):
        out = io.StringIO()
        handled = serve_stream(ServiceSession(window_seconds=0.0),
                               io.StringIO(_request(op="ping") + "\n"), out)
        assert handled == 1
        assert out.getvalue() == "ok pong\n"


class TestTCPTransport:
    @pytest.fixture
    def server(self):
        server = LineProtocolServer(("127.0.0.1", 0),
                                    ServiceSession(window_seconds=0.0))
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        yield server
        server.shutdown()
        server.server_close()
        thread.join(timeout=5)

    def _client(self, server):
        connection = socket.create_connection(server.server_address[:2],
                                              timeout=10)
        return connection, connection.makefile("rw", encoding="utf-8")

    def test_roundtrip_over_tcp(self, server):
        connection, stream = self._client(server)
        try:
            stream.write(_request(op="load_graph", name="g",
                                  edges=[[0, 1], [1, 2]]) + "\n")
            stream.write(_request(op="load_coupling", name="h",
                                  stochastic=[[0.9, 0.1], [0.1, 0.9]],
                                  epsilon=0.2) + "\n")
            stream.write(_request(op="query", graph="g", coupling="h",
                                  beliefs=[[0, 0, 0.1]]) + "\n")
            stream.flush()
            assert stream.readline().startswith("ok graph")
            assert stream.readline().startswith("ok coupling")
            assert stream.readline().startswith("ok query method=LinBP")
        finally:
            connection.close()

    def test_state_is_shared_across_connections(self, server):
        first, first_stream = self._client(server)
        try:
            first_stream.write(_request(op="load_graph", name="g",
                                        edges=[[0, 1]]) + "\n")
            first_stream.flush()
            assert first_stream.readline().startswith("ok graph")
        finally:
            first.close()
        second, second_stream = self._client(server)
        try:
            second_stream.write(_request(op="load_coupling", name="h",
                                         stochastic=[[0.9, 0.1], [0.1, 0.9]],
                                         epsilon=0.2) + "\n")
            second_stream.write(_request(op="query", graph="g", coupling="h",
                                         beliefs=[[0, 0, 0.1]]) + "\n")
            second_stream.flush()
            assert second_stream.readline().startswith("ok coupling")
            assert second_stream.readline().startswith("ok query")
        finally:
            second.close()
