"""Tests for the propagation service: snapshots, views, caches, equivalence.

The coalescer's core guarantee is exercised here: N concurrent
single-query requests through the service produce beliefs identical (to
the engine's 1e-10 equivalence bar) to N sequential ``linbp()`` /
``sbp()`` calls, while actually being dispatched as shared batches.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import IncrementalLinBP, UpdateEvent, linbp, sbp
from repro.core.sbp import SBP
from repro.coupling import synthetic_residual_matrix
from repro.engine import clear_plan_cache
from repro.exceptions import ValidationError
from repro.graphs import random_graph
from repro.service import PropagationService, QuerySpec, ServiceHarness


@pytest.fixture(autouse=True)
def fresh_cache():
    clear_plan_cache()
    yield
    clear_plan_cache()


def _workload(num_queries: int, num_nodes: int = 40, seed: int = 11):
    graph = random_graph(num_nodes, 0.12, seed=7)
    coupling = synthetic_residual_matrix(epsilon=0.05)
    rng = np.random.default_rng(seed)
    explicit_list = []
    for _ in range(num_queries):
        explicit = np.zeros((graph.num_nodes, 3))
        for node in rng.choice(graph.num_nodes, size=6, replace=False):
            values = rng.uniform(-0.1, 0.1, size=2)
            explicit[node] = [values[0], values[1], -values.sum()]
        explicit_list.append(explicit)
    return graph, coupling, explicit_list


class TestConcurrentEquivalence:
    """N concurrent service queries == N sequential solver calls."""

    def test_concurrent_linbp_queries_match_sequential_to_1e10(self):
        graph, coupling, explicit_list = _workload(16)
        service = PropagationService(window_seconds=0.25, max_batch=16)
        service.register_graph("g", graph)
        harness = ServiceHarness(service)
        requests = [dict(graph_name="g", coupling=coupling,
                         explicit_residuals=explicit)
                    for explicit in explicit_list]
        run = harness.run_concurrent(requests, num_clients=16)
        for explicit, result in zip(explicit_list, run.results):
            sequential = linbp(graph, coupling, explicit)
            assert np.abs(result.beliefs - sequential.beliefs).max() < 1e-10
            assert result.iterations == sequential.iterations
            assert result.converged == sequential.converged
        # The requests must actually have been coalesced, not serialised.
        assert service.stats()["coalescer"]["largest_batch"] > 1

    def test_concurrent_sbp_queries_match_sequential_to_1e10(self):
        graph, coupling, explicit_list = _workload(1)
        # Shared labeled set (same non-zero rows), distinct belief values —
        # the stacked-block regime of run_sbp_batch.
        explicit_list = [explicit_list[0] * scale
                         for scale in np.linspace(0.5, 2.0, 12)]
        service = PropagationService(window_seconds=0.25, max_batch=12)
        service.register_graph("g", graph)
        harness = ServiceHarness(service)
        requests = [dict(graph_name="g", coupling=coupling,
                         explicit_residuals=explicit,
                         spec=QuerySpec(method="sbp"))
                    for explicit in explicit_list]
        run = harness.run_concurrent(requests, num_clients=12)
        for explicit, result in zip(explicit_list, run.results):
            sequential = sbp(graph, coupling, explicit)
            assert np.abs(result.beliefs - sequential.beliefs).max() < 1e-10
            assert result.iterations == sequential.iterations
        assert service.stats()["coalescer"]["largest_batch"] > 1

    def test_linbp_star_method_routes_without_echo(self):
        graph, coupling, explicit_list = _workload(1)
        service = PropagationService(window_seconds=0.0)
        service.register_graph("g", graph)
        result = service.query("g", coupling, explicit_list[0],
                               QuerySpec(method="linbp*"))
        assert result.method == "LinBP*"


class TestSnapshots:
    def test_register_and_version_bumps(self):
        graph, coupling, explicit_list = _workload(1)
        service = PropagationService(window_seconds=0.0)
        snapshot = service.register_graph("g", graph)
        assert snapshot.version == 0
        after = service.update("g", new_edges=[(0, 1, 0.5)])
        assert after.version == 1
        assert service.snapshot("g").version == 1
        # The old snapshot object is untouched (in-flight consistency).
        assert snapshot.version == 0
        assert snapshot.graph is graph
        assert after.graph is not graph

    def test_duplicate_and_unknown_names_rejected(self):
        graph, _, _ = _workload(1)
        service = PropagationService(window_seconds=0.0)
        service.register_graph("g", graph)
        with pytest.raises(ValidationError):
            service.register_graph("g", graph)
        with pytest.raises(ValidationError):
            service.snapshot("nope")
        with pytest.raises(ValidationError):
            service.update("nope", new_edges=[(0, 1)])
        service.unregister_graph("g")
        with pytest.raises(ValidationError):
            service.snapshot("g")

    def test_update_requires_a_mutation(self):
        graph, _, _ = _workload(1)
        service = PropagationService(window_seconds=0.0)
        service.register_graph("g", graph)
        with pytest.raises(ValidationError):
            service.update("g")
        with pytest.raises(ValidationError):
            service.update("g", new_edges=[])

    def test_queries_after_update_see_the_new_graph(self):
        graph, coupling, explicit_list = _workload(1, num_nodes=20)
        explicit = explicit_list[0]
        service = PropagationService(window_seconds=0.0)
        service.register_graph("g", graph)
        before = service.query("g", coupling, explicit)
        service.update("g", new_edges=[(0, 11), (1, 13)])
        after = service.query("g", coupling, explicit)
        fresh = linbp(service.snapshot("g").graph, coupling, explicit)
        assert np.abs(after.beliefs - fresh.beliefs).max() < 1e-10
        assert not np.allclose(before.beliefs, after.beliefs)


class TestMaintainedViews:
    def test_sbp_view_follows_label_updates(self):
        graph, coupling, explicit_list = _workload(1)
        explicit = explicit_list[0]
        service = PropagationService(window_seconds=0.0)
        service.register_graph("g", graph)
        initial = service.create_view("g", "v", coupling, explicit)
        assert initial.method == "SBP"
        new_labels = {3: np.array([0.1, -0.05, -0.05])}
        service.update("g", new_beliefs=new_labels)
        maintained = service.view_result("g", "v")
        merged = explicit.copy()
        merged[3] = new_labels[3]
        fresh = sbp(graph, coupling, merged)
        assert np.abs(maintained.beliefs - fresh.beliefs).max() < 1e-10
        # The hook-fed repair accounting is visible through stats().
        view_stats = service.stats()["views"]["g"]["v"]
        assert view_stats["method"] == "sbp"
        assert view_stats["nodes_updated_total"] >= 1

    def test_sbp_view_follows_edge_updates(self):
        graph, coupling, explicit_list = _workload(1)
        explicit = explicit_list[0]
        service = PropagationService(window_seconds=0.0)
        service.register_graph("g", graph)
        service.create_view("g", "v", coupling, explicit)
        snapshot = service.update("g", new_edges=[(0, 21), (5, 30)])
        maintained = service.view_result("g", "v")
        fresh = sbp(snapshot.graph, coupling, explicit)
        assert np.abs(maintained.beliefs - fresh.beliefs).max() < 1e-10

    def test_views_share_the_snapshot_graph_object_after_edge_update(self):
        # The successor graph is built once per update; views repairing
        # against the same object is what lets the engine's id()-keyed
        # plan caches serve view repairs and one-shot queries alike.
        graph, coupling, explicit_list = _workload(1)
        service = PropagationService(window_seconds=0.0)
        service.register_graph("g", graph)
        service.create_view("g", "sbp-view", coupling, explicit_list[0])
        service.create_view("g", "linbp-view", coupling, explicit_list[0],
                            method="linbp")
        snapshot = service.update("g", new_edges=[(0, 21)])
        entry = service._entry("g")
        for view in entry.views.values():
            assert view.runner.graph is snapshot.graph

    def test_linbp_view_follows_updates(self):
        graph, coupling, explicit_list = _workload(1)
        explicit = explicit_list[0]
        service = PropagationService(window_seconds=0.0)
        service.register_graph("g", graph)
        service.create_view("g", "v", coupling, explicit, method="linbp")
        snapshot = service.update("g", new_edges=[(2, 17)])
        maintained = service.view_result("g", "v")
        fresh = linbp(snapshot.graph, coupling, explicit, max_iterations=200)
        assert np.abs(maintained.beliefs - fresh.beliefs).max() < 1e-8

    def test_rejected_update_leaves_views_and_version_untouched(self):
        # A mixed update whose edges are valid but whose beliefs are
        # malformed must be rejected *atomically*: no view may keep the
        # edge repair, and the snapshot version must not move.
        graph, coupling, explicit_list = _workload(1)
        explicit = explicit_list[0]
        service = PropagationService(window_seconds=0.0)
        service.register_graph("g", graph)
        service.create_view("g", "v", coupling, explicit)
        before = service.view_result("g", "v")
        with pytest.raises(ValidationError):
            service.update("g", new_edges=[(0, 21)],
                           new_beliefs={999: np.array([0.1, -0.05, -0.05])})
        with pytest.raises(ValidationError):
            service.update("g", new_edges=[(0, 21)],
                           new_beliefs={3: np.array([0.1, -0.1])})  # wrong k
        assert service.snapshot("g").version == 0
        assert service.snapshot("g").graph is graph
        after = service.view_result("g", "v")
        assert np.array_equal(after.beliefs, before.beliefs)
        # The rejected edge never reached the view: a retry applies it once.
        snapshot = service.update("g", new_edges=[(0, 21)])
        maintained = service.view_result("g", "v")
        fresh = sbp(snapshot.graph, coupling, explicit)
        assert np.abs(maintained.beliefs - fresh.beliefs).max() < 1e-10

    def test_view_name_collision_and_unknown_view(self):
        graph, coupling, explicit_list = _workload(1)
        service = PropagationService(window_seconds=0.0)
        service.register_graph("g", graph)
        service.create_view("g", "v", coupling, explicit_list[0])
        with pytest.raises(ValidationError):
            service.create_view("g", "v", coupling, explicit_list[0])
        with pytest.raises(ValidationError):
            service.view_result("g", "nope")
        assert service.view_names("g") == ["v"]


class TestResultCache:
    def test_identical_request_hits_the_cache(self):
        graph, coupling, explicit_list = _workload(1)
        service = PropagationService(window_seconds=0.0)
        service.register_graph("g", graph)
        first = service.query("g", coupling, explicit_list[0])
        second = service.query("g", coupling, explicit_list[0])
        assert second is first
        assert service.stats()["result_cache"]["hits"] == 1

    def test_update_invalidates_cached_results(self):
        graph, coupling, explicit_list = _workload(1)
        service = PropagationService(window_seconds=0.0)
        service.register_graph("g", graph)
        first = service.query("g", coupling, explicit_list[0])
        service.update("g", new_edges=[(0, 5, 0.5)])
        second = service.query("g", coupling, explicit_list[0])
        assert second is not first

    def test_ttl_expiry_forces_recompute(self):
        now = [0.0]
        graph, coupling, explicit_list = _workload(1)
        service = PropagationService(window_seconds=0.0,
                                     result_ttl_seconds=60.0,
                                     clock=lambda: now[0])
        service.register_graph("g", graph)
        first = service.query("g", coupling, explicit_list[0])
        now[0] = 59.0
        assert service.query("g", coupling, explicit_list[0]) is first
        now[0] = 61.0
        recomputed = service.query("g", coupling, explicit_list[0])
        assert recomputed is not first
        assert np.abs(recomputed.beliefs - first.beliefs).max() < 1e-12

    def test_different_parameters_do_not_share_results(self):
        graph, coupling, explicit_list = _workload(1)
        service = PropagationService(window_seconds=0.0)
        service.register_graph("g", graph)
        a = service.query("g", coupling, explicit_list[0],
                          QuerySpec(num_iterations=3))
        b = service.query("g", coupling, explicit_list[0],
                          QuerySpec(num_iterations=5))
        assert a is not b
        assert a.iterations == 3 and b.iterations == 5

    def test_sbp_results_ignore_iterative_solver_parameters(self):
        # Single-pass SBP has no iteration budget; requests differing only
        # in the LinBP-family knobs must share one cached result.
        graph, coupling, explicit_list = _workload(1)
        service = PropagationService(window_seconds=0.0)
        service.register_graph("g", graph)
        a = service.query("g", coupling, explicit_list[0],
                          QuerySpec(method="sbp", max_iterations=50))
        b = service.query("g", coupling, explicit_list[0],
                          QuerySpec(method="sbp", max_iterations=200,
                                    tolerance=1e-6))
        assert b is a


class TestValidation:
    def test_unknown_method_rejected(self):
        graph, coupling, explicit_list = _workload(1)
        service = PropagationService(window_seconds=0.0)
        service.register_graph("g", graph)
        with pytest.raises(ValidationError):
            service.query("g", coupling, explicit_list[0],
                          QuerySpec(method="bp"))
        with pytest.raises(ValidationError):
            service.create_view("g", "v", coupling, explicit_list[0],
                                method="magic")

    def test_shape_mismatch_rejected(self):
        graph, coupling, explicit_list = _workload(1)
        service = PropagationService(window_seconds=0.0)
        service.register_graph("g", graph)
        with pytest.raises(ValidationError):
            service.query("g", coupling, explicit_list[0][:-1])


class TestUpdateHooks:
    """The core runners' hooks that the service's accounting builds on."""

    def test_sbp_hooks_fire_per_mutation(self):
        graph, coupling, explicit_list = _workload(1)
        runner = SBP(graph, coupling)
        events = []
        runner.add_update_hook(events.append)
        runner.run(explicit_list[0])
        runner.add_explicit_beliefs({2: np.array([0.1, -0.05, -0.05])})
        runner.add_edges([(0, 9)])
        kinds = [event.kind for event in events]
        assert kinds == ["run", "explicit_beliefs", "edges"]
        assert all(isinstance(event, UpdateEvent) for event in events)
        assert events[1].nodes_updated >= 1

    def test_incremental_linbp_hooks_fire_per_mutation(self):
        graph, coupling, explicit_list = _workload(1)
        runner = IncrementalLinBP(graph, coupling)
        events = []
        runner.add_update_hook(events.append)
        runner.run(explicit_list[0])
        runner.add_explicit_beliefs({2: np.array([0.1, -0.05, -0.05])})
        runner.add_edges([(0, 9)])
        assert [event.kind for event in events] == \
            ["run", "explicit_beliefs", "edges"]
        runner.remove_update_hook(lambda event: None)  # unknown hook: no-op
