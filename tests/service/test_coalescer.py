"""Behaviour tests for the micro-batching coalescer."""

from __future__ import annotations

import threading
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.exceptions import ValidationError
from repro.service import MicroBatcher


def _echo_batch(items):
    """A batch function that tags every item with the batch size."""
    return [(item, len(items)) for item in items]


class TestCoalescing:
    def test_single_request_runs_alone(self):
        batcher = MicroBatcher(window_seconds=0.001, max_batch=8)
        result = batcher.submit("key", "a", _echo_batch)
        assert result == ("a", 1)
        assert batcher.stats["batches"] == 1
        assert batcher.stats["largest_batch"] == 1

    def test_concurrent_same_key_requests_coalesce(self):
        batcher = MicroBatcher(window_seconds=0.25, max_batch=8)
        barrier = threading.Barrier(8)

        def client(item):
            barrier.wait()
            return batcher.submit("key", item, _echo_batch)

        with ThreadPoolExecutor(max_workers=8) as pool:
            results = list(pool.map(client, range(8)))
        # Everyone got their own item back, each exactly once.
        assert sorted(item for item, _ in results) == list(range(8))
        assert batcher.stats["largest_batch"] > 1
        assert batcher.stats["requests"] == 8

    def test_full_batch_dispatches_before_window(self):
        # With max_batch == client count the batch must dispatch early:
        # a generous window would otherwise dominate the elapsed time.
        batcher = MicroBatcher(window_seconds=30.0, max_batch=4)
        barrier = threading.Barrier(4)

        def client(item):
            barrier.wait()
            return batcher.submit("key", item, _echo_batch)

        with ThreadPoolExecutor(max_workers=4) as pool:
            futures = [pool.submit(client, i) for i in range(4)]
            results = [future.result(timeout=10) for future in futures]
        batch_sizes = {size for _, size in results}
        assert batch_sizes == {4}

    def test_distinct_keys_never_share_a_batch(self):
        batcher = MicroBatcher(window_seconds=0.25, max_batch=8)
        barrier = threading.Barrier(6)

        def client(item):
            barrier.wait()
            return batcher.submit(item % 2, item, _echo_batch)

        with ThreadPoolExecutor(max_workers=6) as pool:
            results = list(pool.map(client, range(6)))
        for item, batch_size in results:
            assert batch_size <= 3  # at most the 3 requests of its key

    def test_zero_window_disables_coalescing(self):
        batcher = MicroBatcher(window_seconds=0.0, max_batch=8)
        for item in range(3):
            assert batcher.submit("key", item, _echo_batch) == (item, 1)
        assert batcher.stats["batches"] == 3
        assert batcher.stats["coalesced_requests"] == 0


class TestErrors:
    def test_batch_error_propagates_to_every_member(self):
        batcher = MicroBatcher(window_seconds=0.25, max_batch=4)
        barrier = threading.Barrier(4)

        def explode(items):
            raise RuntimeError("engine on fire")

        def client(item):
            barrier.wait()
            return batcher.submit("key", item, explode)

        with ThreadPoolExecutor(max_workers=4) as pool:
            futures = [pool.submit(client, i) for i in range(4)]
            for future in futures:
                with pytest.raises(RuntimeError, match="engine on fire"):
                    future.result(timeout=10)

    def test_wrong_result_count_is_rejected(self):
        batcher = MicroBatcher(window_seconds=0.0, max_batch=4)
        with pytest.raises(ValidationError):
            batcher.submit("key", "a", lambda items: [])

    def test_next_batch_starts_clean_after_error(self):
        batcher = MicroBatcher(window_seconds=0.0, max_batch=4)
        with pytest.raises(ZeroDivisionError):
            batcher.submit("key", "a", lambda items: 1 / 0 and [])
        assert batcher.submit("key", "b", _echo_batch) == ("b", 1)

    def test_constructor_validation(self):
        with pytest.raises(ValidationError):
            MicroBatcher(window_seconds=-1.0)
        with pytest.raises(ValidationError):
            MicroBatcher(max_batch=0)
