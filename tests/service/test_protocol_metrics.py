"""The telemetry wire surface: the ``metrics`` op, ``stats`` parity.

Three contracts pinned here:

* the v1 ``metrics`` op returns the merged registry snapshot (global
  telemetry plus the service's always-on request counters) and, on
  request, the Prometheus text exposition;
* the v0 ``stats`` line stays **byte-identical** to the pre-telemetry
  releases even though its counters now live on a metrics registry;
* ``PropagationService.stats()`` keeps its exact dict shape — the
  differential test below compares against a hand-pinned expectation,
  not against the implementation.
"""

from __future__ import annotations

import json

import numpy as np

from repro.coupling import homophily_matrix
from repro.graphs import chain_graph
from repro.service import PropagationService, ServiceSession


def _line(**request) -> str:
    return json.dumps(request)


def _loaded_session() -> ServiceSession:
    session = ServiceSession(window_seconds=0.0)
    response, _ = session.handle_line(_line(
        op="load_graph", name="g", edges=[[0, 1], [1, 2], [2, 3]]))
    assert response.startswith("ok")
    response, _ = session.handle_line(_line(
        op="load_coupling", name="h",
        stochastic=[[0.9, 0.1], [0.1, 0.9]], epsilon=0.05))
    assert response.startswith("ok")
    return session


def _query(session: ServiceSession, **extra) -> str:
    request = dict(op="query", graph="g", coupling="h",
                   beliefs=[[0, 0, 0.9], [0, 1, -0.9]])
    request.update(extra)
    response, _ = session.handle_line(_line(**request))
    return response


class TestMetricsOp:
    def test_v1_returns_merged_snapshot(self):
        session = _loaded_session()
        _query(session)
        body = json.loads(session.handle_line(
            _line(v=1, op="metrics"))[0])
        assert body["ok"] is True
        assert body["op"] == "metrics"
        metrics = body["metrics"]
        # Global telemetry and the service's always-on registry, merged.
        assert "repro_engine_sweeps_total" in metrics
        assert "repro_service_queries_total" in metrics
        queries = metrics["repro_service_queries_total"]["series"]
        assert queries == [{"labels": {"graph": "g"}, "value": 1.0}]
        assert body["names"] == len(metrics)
        assert body["series"] == sum(
            len(entry["series"]) for entry in metrics.values())

    def test_v1_prometheus_format_on_request(self):
        session = _loaded_session()
        _query(session)
        body = json.loads(session.handle_line(
            _line(v=1, op="metrics", format="prometheus"))[0])
        text = body["prometheus"]
        assert "# TYPE repro_service_queries_total counter" in text
        assert 'repro_service_queries_total{graph="g"} 1' in text
        plain = json.loads(session.handle_line(_line(v=1, op="metrics"))[0])
        assert "prometheus" not in plain

    def test_v0_renders_a_one_line_summary(self):
        session = _loaded_session()
        response, keep_running = session.handle_line(_line(op="metrics"))
        assert keep_running
        assert response.startswith("ok metrics names=")
        assert " series=" in response and " enabled=" in response

    def test_unknown_op_error_code_is_stable(self):
        session = _loaded_session()
        body = json.loads(session.handle_line(_line(v=1, op="metricz"))[0])
        assert body["ok"] is False
        assert body["error"]["code"] == "unknown-op"
        response, _ = session.handle_line(_line(op="metricz"))
        assert response == "error unknown op 'metricz'"


class TestStatsParity:
    def test_v0_stats_line_is_byte_stable(self):
        session = _loaded_session()
        assert _query(session).startswith("ok query")
        assert _query(session).startswith("ok query")  # result-cache hit
        response, _ = session.handle_line(_line(op="stats"))
        assert response == ("ok stats queries=2 updates=0 batches=1 "
                            "coalesced_requests=0 largest_batch=1 "
                            "cache_hits=1 cache_size=1")

    def test_v1_stats_carries_the_full_dict(self):
        session = _loaded_session()
        _query(session)
        body = json.loads(session.handle_line(_line(v=1, op="stats"))[0])
        assert body["ok"] is True
        assert body["stats"]["queries"] == 1
        assert body["stats"]["coalescer"]["batches"] == 1


class TestStatsShapeDifferential:
    def test_counters_match_pinned_shape_after_traffic(self):
        service = PropagationService(window_seconds=0.0,
                                     result_cache_size=8)
        graph = chain_graph(6)
        coupling = homophily_matrix(epsilon=0.2)
        explicit = np.zeros((6, 2))
        explicit[0] = [0.1, -0.1]
        service.register_graph("g", graph)
        service.query("g", coupling, explicit)
        service.query("g", coupling, explicit)  # cache hit
        service.update("g", new_edges=[(3, 5)])
        service.query("g", coupling, explicit, max_staleness=1)
        stats = service.stats()
        # Top-level counters are plain ints with the pre-telemetry keys.
        assert stats["queries"] == 3
        assert stats["updates"] == 1
        assert stats["stale_hits"] == 1
        assert isinstance(stats["queries"], int)
        assert isinstance(stats["updates"], int)
        assert isinstance(stats["stale_hits"], int)
        assert stats["graphs"] == {"g": 1}
        assert set(stats) == {
            "queries", "updates", "stale_hits", "graphs", "views",
            "shards", "coalescer", "result_cache", "plan_cache"}
        assert set(stats["coalescer"]) == {
            "requests", "batches", "coalesced_requests", "largest_batch"}

    def test_counters_survive_obs_disabled(self):
        from repro.obs import set_obs_enabled

        service = PropagationService(window_seconds=0.0)
        graph = chain_graph(4)
        coupling = homophily_matrix(epsilon=0.2)
        explicit = np.zeros((4, 2))
        explicit[0] = [0.1, -0.1]
        service.register_graph("g", graph)
        try:
            set_obs_enabled(False)
            service.query("g", coupling, explicit)
            service.update("g", new_edges=[(1, 3)])
        finally:
            set_obs_enabled(True)
        stats = service.stats()
        # stats() is contract state, not telemetry: the always-on
        # registry keeps counting with the global switch off.
        assert stats["queries"] == 1
        assert stats["updates"] == 1
