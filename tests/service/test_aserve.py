"""AsyncServiceServer: admission control, backpressure, ordering, shutdown."""

from __future__ import annotations

import asyncio
import json

import numpy as np
import pytest

from repro.core import linbp
from repro.exceptions import ValidationError
from repro.graphs import random_graph
from repro.service import AsyncServiceServer, ServiceSession, serve_async

pytestmark = pytest.mark.filterwarnings(
    "ignore::DeprecationWarning:asyncio")


def _line(**request) -> str:
    return json.dumps(request)


def _loaded_session() -> ServiceSession:
    session = ServiceSession(window_seconds=0.05, max_batch=8)
    graph = random_graph(30, 0.15, seed=3)
    session.handle_line(_line(
        op="load_graph", name="g",
        edges=[[e.source, e.target, e.weight] for e in graph.edges()],
        num_nodes=graph.num_nodes))
    session.handle_line(_line(
        op="load_coupling", name="h",
        stochastic=[[0.9, 0.1], [0.1, 0.9]], epsilon=0.05))
    return session


def _query_line(**extra) -> str:
    request = dict(v=1, op="query", graph="g", coupling="h",
                   beliefs=[[0, 0, 0.9], [0, 1, -0.9]])
    request.update(extra)
    return json.dumps(request)


async def _talk(address, lines):
    """One connection: send each line, await its response (closed loop)."""
    reader, writer = await asyncio.open_connection(*address)
    responses = []
    try:
        for line in lines:
            writer.write((line + "\n").encode())
            await writer.drain()
            raw = await asyncio.wait_for(reader.readline(), timeout=30)
            responses.append(raw.decode().rstrip("\n"))
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):
            pass
    return responses


async def _pipeline(address, lines):
    """One connection: write every line up front, then read all responses."""
    reader, writer = await asyncio.open_connection(*address)
    writer.write(("".join(line + "\n" for line in lines)).encode())
    await writer.drain()
    responses = []
    for _ in lines:
        raw = await asyncio.wait_for(reader.readline(), timeout=30)
        responses.append(raw.decode().rstrip("\n"))
    writer.close()
    try:
        await writer.wait_closed()
    except (ConnectionError, OSError):
        pass
    return responses


class TestLifecycle:
    def test_start_serve_shutdown_op(self):
        async def scenario():
            server = AsyncServiceServer(_loaded_session())
            address = await server.start()
            serve = asyncio.get_event_loop().create_task(
                server.serve_until_shutdown())
            out = await _talk(address, [_line(v=1, op="ping"),
                                        _line(v=1, op="shutdown")])
            assert json.loads(out[0]) == {"ok": True, "v": 1, "op": "ping"}
            assert json.loads(out[1])["ok"] is True
            await asyncio.wait_for(serve, timeout=10)
            return server

        server = asyncio.run(scenario())
        assert server.stats["connections"] == 1
        assert server.stats["requests"] == 2
        assert server.stats["rejected"] == 0

    def test_request_shutdown_unblocks_serving(self):
        async def scenario():
            server = AsyncServiceServer(_loaded_session())
            await server.start()
            serve = asyncio.get_event_loop().create_task(
                server.serve_until_shutdown())
            await asyncio.sleep(0)
            server.request_shutdown()
            await asyncio.wait_for(serve, timeout=10)

        asyncio.run(scenario())

    def test_double_start_and_unstarted_address_rejected(self):
        async def scenario():
            server = AsyncServiceServer(_loaded_session())
            with pytest.raises(ValidationError):
                server.address
            await server.start()
            with pytest.raises(ValidationError):
                await server.start()
            await server.close()

        asyncio.run(scenario())

    @pytest.mark.parametrize("kwargs", [
        dict(max_pending=-1),
        dict(max_inflight=0),
        dict(workers=0),
    ])
    def test_invalid_knobs_rejected(self, kwargs):
        with pytest.raises(ValidationError):
            AsyncServiceServer(_loaded_session(), **kwargs)

    def test_serve_async_reports_bound_address(self):
        async def scenario():
            addresses = []
            session = _loaded_session()

            async def shutdown_when_ready():
                while not addresses:
                    await asyncio.sleep(0.01)
                await _talk(addresses[0], [_line(op="shutdown")])

            await asyncio.wait_for(asyncio.gather(
                serve_async(session, ready=addresses.append),
                shutdown_when_ready()), timeout=30)
            assert addresses and addresses[0][1] > 0

        asyncio.run(scenario())


class TestTraffic:
    def test_concurrent_clients_get_correct_beliefs(self):
        session = _loaded_session()
        graph = session.service.snapshot("g").graph
        coupling = session.coupling("h")
        explicit = np.zeros((graph.num_nodes, 2))
        explicit[0] = [0.9, -0.9]
        direct = linbp(graph, coupling, explicit)

        async def scenario():
            server = AsyncServiceServer(session)
            address = await server.start()
            line = _query_line(limit=0, return_beliefs=True)
            try:
                return await asyncio.gather(
                    *[_talk(address, [line] * 3) for _ in range(8)])
            finally:
                await server.close()

        for responses in asyncio.run(scenario()):
            for raw in responses:
                body = json.loads(raw)
                assert body["ok"] is True
                for node, values in body["beliefs"]:
                    assert values == [float(v)
                                      for v in direct.beliefs[node]]

    def test_concurrent_connections_coalesce_in_the_micro_batcher(self):
        session = _loaded_session()

        async def scenario():
            server = AsyncServiceServer(session, workers=16)
            address = await server.start()
            try:
                await asyncio.gather(
                    *[_talk(address, [_query_line()]) for _ in range(8)])
            finally:
                await server.close()

        asyncio.run(scenario())
        assert session.service.stats()["coalescer"]["largest_batch"] > 1

    def test_pipelined_responses_come_back_in_request_order(self):
        session = _loaded_session()

        async def scenario():
            server = AsyncServiceServer(session, max_inflight=2)
            address = await server.start()
            lines = []
            for index in range(12):
                if index % 2:
                    lines.append(_line(op="ping"))          # v0 text
                else:
                    lines.append(_line(v=1, op="ping"))     # v1 JSON
            try:
                return await _pipeline(address, lines)
            finally:
                await server.close()

        responses = asyncio.run(scenario())
        assert len(responses) == 12
        for index, raw in enumerate(responses):
            if index % 2:
                assert raw == "ok pong"
            else:
                assert json.loads(raw)["op"] == "ping"


class TestAdmissionControl:
    def test_overload_rejection_in_request_version(self):
        session = _loaded_session()

        async def scenario():
            server = AsyncServiceServer(session, max_pending=0)
            address = await server.start()
            try:
                return await _talk(address, [_line(v=1, op="ping"),
                                             _line(op="ping")]), server
            finally:
                await server.close()

        (v1, v0), server = asyncio.run(scenario())
        body = json.loads(v1)
        assert body["ok"] is False
        assert body["error"]["code"] == "overloaded"
        assert v0.startswith("error server overloaded")
        assert server.stats["rejected"] == 2
        assert server.stats["requests"] == 0
        # No request ever reached the session's service.
        assert session.service.stats()["queries"] == 0

    def test_admitted_traffic_flows_once_capacity_exists(self):
        session = _loaded_session()

        async def scenario():
            server = AsyncServiceServer(session, max_pending=1,
                                        max_inflight=1)
            address = await server.start()
            try:
                return await _talk(address, [_query_line()] * 5)
            finally:
                await server.close()

        responses = asyncio.run(scenario())
        # A closed-loop client never exceeds one in-flight request, so
        # max_pending=1 must not reject anything.
        assert all(json.loads(raw)["ok"] for raw in responses)
