"""Nearest-rank percentile on harness runs: exact ranks, edge cases."""

from __future__ import annotations

import pytest

from repro.exceptions import ValidationError
from repro.service.harness import HarnessRun


def _run(latencies) -> HarnessRun:
    return HarnessRun(results=[None] * len(latencies), elapsed_seconds=1.0,
                      latencies=list(latencies))


class TestPercentile:
    def test_median_and_extremes(self):
        run = _run([0.4, 0.1, 0.3, 0.2])  # unsorted on purpose
        assert run.percentile(50) == 0.2
        assert run.percentile(100) == 0.4
        assert run.percentile(0.001) == 0.1

    def test_single_sample_answers_every_percentile(self):
        run = _run([0.7])
        for p in (0.5, 1, 50, 99, 100):
            assert run.percentile(p) == 0.7

    def test_float_rank_products_do_not_overshoot(self):
        # 29 / 100 * 100 is 29.000000000000004 in binary floating point;
        # a naive ceil lands on rank 30.  Nearest-rank demands rank 29.
        run = _run([float(i) for i in range(1, 101)])
        assert run.percentile(29) == 29.0
        assert run.percentile(70) == 70.0
        assert run.percentile(99) == 99.0
        assert run.percentile(100) == 100.0

    def test_result_is_always_a_recorded_sample(self):
        latencies = [0.013, 0.002, 0.8, 0.044, 0.1]
        run = _run(latencies)
        for p in (1, 10, 33.3, 50, 66.6, 90, 99, 100):
            assert run.percentile(p) in latencies

    def test_out_of_range_percentile_rejected(self):
        run = _run([0.1])
        for p in (0, -1, 100.001, float("nan")):
            with pytest.raises(ValidationError):
                run.percentile(p)

    def test_empty_run_raises_clean_error(self):
        run = _run([])
        with pytest.raises(ValidationError, match="no latencies"):
            run.percentile(50)
        with pytest.raises(ValidationError, match="no latencies"):
            _ = run.p99

    def test_p99_property_matches_percentile(self):
        run = _run([float(i) for i in range(1, 201)])
        assert run.p99 == run.percentile(99.0) == 198.0
