"""Sharded service routing: ShardedSnapshot, executor lifecycle, equivalence."""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.core.linbp import linbp
from repro.coupling import synthetic_residual_matrix
from repro.exceptions import ValidationError
from repro.graphs import random_graph
from repro.service import (
    GraphSnapshot,
    PropagationService,
    QuerySpec,
    ShardedSnapshot,
)
from repro.shard import SequentialShardExecutor


@pytest.fixture
def graph():
    return random_graph(90, 0.07, seed=12)


@pytest.fixture
def coupling():
    return synthetic_residual_matrix(epsilon=0.04)


def _explicit(num_nodes, seed=0):
    rng = np.random.default_rng(seed)
    explicit = np.zeros((num_nodes, 3))
    labeled = rng.choice(num_nodes, 8, replace=False)
    values = rng.uniform(-0.1, 0.1, (8, 2))
    explicit[labeled, 0] = values[:, 0]
    explicit[labeled, 1] = values[:, 1]
    explicit[labeled, 2] = -values.sum(axis=1)
    return explicit


class TestShardedRouting:
    def test_register_installs_sharded_snapshot(self, graph):
        with PropagationService(shards=3,
                                shard_executor="sequential") as service:
            snapshot = service.register_graph("g", graph)
            assert isinstance(snapshot, ShardedSnapshot)
            assert snapshot.partition.num_shards == 3
            assert snapshot.partition.graph is graph

    def test_unsharded_service_keeps_plain_snapshots(self, graph):
        service = PropagationService()
        snapshot = service.register_graph("g", graph)
        assert type(snapshot) is GraphSnapshot

    @pytest.mark.parametrize("executor", ["sequential", "pool"])
    def test_query_matches_direct_linbp(self, graph, coupling, executor):
        explicit = _explicit(graph.num_nodes)
        direct = linbp(graph, coupling, explicit, num_iterations=10)
        with PropagationService(window_seconds=0.0, shards=3,
                                shard_executor=executor) as service:
            service.register_graph("g", graph)
            result = service.query("g", coupling, explicit,
                                   QuerySpec(num_iterations=10))
            assert np.abs(result.beliefs - direct.beliefs).max() < 1e-10
            assert result.extra["engine"] == "shard"
            assert result.extra["num_shards"] == 3

    def test_linbp_star_routes_sharded_too(self, graph, coupling):
        from repro.core.linbp import linbp_star

        explicit = _explicit(graph.num_nodes, seed=4)
        direct = linbp_star(graph, coupling, explicit, num_iterations=8)
        with PropagationService(window_seconds=0.0, shards=2,
                                shard_executor="sequential") as service:
            service.register_graph("g", graph)
            result = service.query("g", coupling, explicit,
                                   QuerySpec(method="linbp*",
                                             num_iterations=8))
            assert np.abs(result.beliefs - direct.beliefs).max() < 1e-10

    def test_sbp_keeps_single_matrix_path(self, graph, coupling):
        from repro.core.sbp import sbp

        explicit = _explicit(graph.num_nodes, seed=5)
        direct = sbp(graph, coupling, explicit)
        with PropagationService(window_seconds=0.0, shards=3,
                                shard_executor="sequential") as service:
            service.register_graph("g", graph)
            result = service.query("g", coupling, explicit,
                                   QuerySpec(method="sbp"))
            assert np.abs(result.beliefs - direct.beliefs).max() < 1e-10
            assert result.extra.get("engine") != "shard"

    def test_concurrent_sharded_queries_coalesce_and_agree(self, graph,
                                                           coupling):
        explicits = [_explicit(graph.num_nodes, seed=s) for s in range(8)]
        with PropagationService(window_seconds=0.02, max_batch=8,
                                shards=2, result_ttl_seconds=None,
                                result_cache_size=1,
                                shard_executor="sequential") as service:
            service.register_graph("g", graph)
            results: list = [None] * len(explicits)

            def worker(index):
                results[index] = service.query(
                    "g", coupling, explicits[index],
                    QuerySpec(num_iterations=8))

            threads = [threading.Thread(target=worker, args=(i,))
                       for i in range(len(explicits))]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            for index, result in enumerate(results):
                direct = linbp(graph, coupling, explicits[index],
                               num_iterations=8)
                assert np.abs(result.beliefs - direct.beliefs).max() < 1e-10
            assert service.stats()["coalescer"]["largest_batch"] >= 1


class TestShardedLifecycle:
    def test_update_repartitions_and_retires_executor(self, graph, coupling):
        explicit = _explicit(graph.num_nodes, seed=2)
        with PropagationService(window_seconds=0.0, shards=2,
                                shard_executor="sequential") as service:
            service.register_graph("g", graph)
            service.query("g", coupling, explicit, QuerySpec(num_iterations=5))
            entry = service._entry("g")
            first_executor = entry.executor
            assert isinstance(first_executor, SequentialShardExecutor)
            snapshot = service.update("g", new_edges=[(0, 89)])
            assert isinstance(snapshot, ShardedSnapshot)
            assert snapshot.version == 1
            assert entry.executor is None  # retired with the old partition
            direct = linbp(snapshot.graph, coupling, explicit,
                           num_iterations=5)
            result = service.query("g", coupling, explicit,
                                   QuerySpec(num_iterations=5))
            assert np.abs(result.beliefs - direct.beliefs).max() < 1e-10
            assert entry.executor is not first_executor

    def test_belief_only_update_keeps_partition(self, graph, coupling):
        explicit = _explicit(graph.num_nodes, seed=3)
        with PropagationService(window_seconds=0.0, shards=2,
                                shard_executor="sequential") as service:
            service.register_graph("g", graph)
            service.create_view("g", "v", coupling, explicit, method="sbp")
            old_partition = service.snapshot("g").partition
            service.update("g", new_beliefs={0: np.array([0.1, -0.05,
                                                          -0.05])})
            assert service.snapshot("g").partition is old_partition

    def test_unregister_closes_executor(self, graph, coupling):
        service = PropagationService(window_seconds=0.0, shards=2,
                                     shard_executor="sequential")
        service.register_graph("g", graph)
        service.query("g", coupling, _explicit(graph.num_nodes),
                      QuerySpec(num_iterations=3))
        entry = service._entry("g")
        assert entry.executor is not None
        service.unregister_graph("g")
        assert entry.executor is None

    def test_stats_report_shard_info(self, graph, coupling):
        with PropagationService(window_seconds=0.0, shards=3,
                                shard_executor="sequential") as service:
            service.register_graph("g", graph)
            stats = service.stats()
            info = stats["shards"]["g"]
            assert info["num_shards"] == 3
            assert info["method"] == "bfs"
            assert info["executor"] is None  # lazy: no query yet
            service.query("g", coupling, _explicit(graph.num_nodes),
                          QuerySpec(num_iterations=3))
            info = service.stats()["shards"]["g"]
            assert info["executor"] == "SequentialShardExecutor"

    def test_invalid_shard_parameters(self):
        with pytest.raises(ValidationError):
            PropagationService(shards=0)
        with pytest.raises(ValidationError):
            PropagationService(shards=2, shard_executor="threads")
