"""The versioned line protocol: v1 JSON responses, error taxonomy, v0 parity.

v0 (no ``"v"`` in the request) is the legacy plain-text protocol and
must stay byte-identical — ``tests/service/test_server.py`` pins that.
This module covers what the redesign added: requests carrying
``"v": 1`` get structured JSON replies with a stable machine-readable
error-code taxonomy, exact float64 belief round-trips, and shape parity
with the v0 text (same facts, different encoding).
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.exceptions import (
    BackendError,
    ConvergenceError,
    DatasetError,
    NotConvergentParametersError,
    ReproError,
    SchemaError,
    ValidationError,
)
from repro.service import ServiceSession, error_code
from repro.service.protocol import ERROR_CODES


def _line(**request) -> str:
    return json.dumps(request)


def _session() -> ServiceSession:
    session = ServiceSession(window_seconds=0.0)
    response, _ = session.handle_line(_line(
        v=1, op="load_graph", name="g", edges=[[0, 1], [1, 2], [2, 3]]))
    assert json.loads(response)["ok"]
    response, _ = session.handle_line(_line(
        v=1, op="load_coupling", name="h",
        stochastic=[[0.9, 0.1], [0.1, 0.9]], epsilon=0.05))
    assert json.loads(response)["ok"]
    return session


def _query(session: ServiceSession, **extra):
    request = dict(v=1, op="query", graph="g", coupling="h",
                   beliefs=[[0, 0, 0.9], [0, 1, -0.9]])
    request.update(extra)
    response, keep_running = session.handle_line(_line(**request))
    assert keep_running
    return json.loads(response)


class TestV1Responses:
    def test_success_envelope(self):
        session = _session()
        body = _query(session)
        assert body["ok"] is True
        assert body["v"] == 1
        assert body["op"] == "query"
        assert body["method"] == "LinBP"
        assert isinstance(body["iterations"], int)
        assert body["converged"] is True
        assert body["snapshot_version"] == 0

    def test_labels_and_truncation_flag(self):
        session = _session()
        body = _query(session, limit=2)
        assert len(body["labels"]) == 2
        assert body["truncated"] is True
        node, label = body["labels"][0]
        assert isinstance(node, int) and isinstance(label, str)
        full = _query(session, limit=0)
        assert body["labels"] == full["labels"][:2]
        assert full["truncated"] is False

    def test_beliefs_round_trip_exact_float64(self):
        session = _session()
        body = _query(session, limit=0, return_beliefs=True)
        assert body["truncated"] is False
        # Re-solve directly and compare bit-for-bit: the v1 encoding
        # must not lose precision the way v0's %.6g text does.
        from repro.core import linbp

        service = session.service
        coupling = session.coupling("h")
        snapshot = service.snapshot("g")
        explicit = np.zeros((snapshot.graph.num_nodes, 2))
        explicit[0] = [0.9, -0.9]
        direct = linbp(snapshot.graph, coupling, explicit)
        decoded = {node: values for node, values in body["beliefs"]}
        for node, values in decoded.items():
            assert values == [float(v) for v in direct.beliefs[node]]

    def test_ping_stats_and_shutdown(self):
        session = _session()
        response, _ = session.handle_line(_line(v=1, op="ping"))
        assert json.loads(response) == {"ok": True, "v": 1, "op": "ping"}
        response, _ = session.handle_line(_line(v=1, op="stats"))
        stats = json.loads(response)["stats"]
        assert stats["queries"] == 0 and stats["graphs"] == {"g": 0}
        response, keep_running = session.handle_line(_line(v=1, op="shutdown"))
        assert json.loads(response)["ok"] is True
        assert keep_running is False

    def test_staleness_field_reaches_the_service(self):
        session = _session()
        first = _query(session)
        response, _ = session.handle_line(_line(
            v=1, op="update", graph="g", edges=[[0, 3]]))
        assert json.loads(response)["version"] == 1
        stale = _query(session, staleness=1)
        assert stale["snapshot_version"] == first["snapshot_version"] == 0
        fresh = _query(session)
        assert fresh["snapshot_version"] == 1


class TestV1ErrorPaths:
    def test_malformed_json_is_a_v0_error(self):
        session = _session()
        response, keep_running = session.handle_line("{not json")
        assert response.startswith("error invalid JSON")
        assert keep_running

    def test_unsupported_version_is_a_v0_error(self):
        session = _session()
        response, _ = session.handle_line(_line(v=2, op="ping"))
        assert response == "error unsupported protocol version 2 " \
                           "(supported: 0, 1)"

    def test_unknown_op(self):
        session = _session()
        body = json.loads(session.handle_line(_line(v=1, op="solve"))[0])
        assert body["ok"] is False
        assert body["error"]["code"] == "unknown-op"

    def test_missing_field(self):
        session = _session()
        body = json.loads(session.handle_line(
            _line(v=1, op="query", coupling="h"))[0])
        assert body["error"]["code"] == "missing-field"
        assert "graph" in body["error"]["message"]

    def test_non_object_request(self):
        session = _session()
        body_list = session.handle_line('[1, 2, 3]')[0]
        assert body_list.startswith("error ")

    @pytest.mark.parametrize("beliefs,fragment", [
        ([[0, 0]], "triples"),                      # short row
        ([[99, 0, 0.5]], "node 99 out of range"),   # node past the graph
        ([[0, 7, 0.5]], "class 7 out of range"),    # class past the coupling
    ])
    def test_oversized_or_malformed_belief_rows(self, beliefs, fragment):
        session = _session()
        body = json.loads(session.handle_line(_line(
            v=1, op="query", graph="g", coupling="h",
            beliefs=beliefs))[0])
        assert body["ok"] is False
        assert body["error"]["code"] == "validation"
        assert fragment in body["error"]["message"]

    def test_validation_code_for_bad_spec(self):
        session = _session()
        body = _query(_session(), method="bp")
        assert body["error"]["code"] == "validation"
        body = _query(session, tolerance=0)
        assert body["error"]["code"] == "validation"

    def test_unknown_coupling_and_graph(self):
        session = _session()
        body = _query(session, coupling="nope")
        assert body["error"]["code"] == "validation"
        body = _query(session, graph="nope")
        assert body["error"]["code"] == "validation"

    def test_overload_response_in_both_versions(self):
        session = _session()
        v1 = session.overload_response(_line(v=1, op="ping"), "busy")
        assert json.loads(v1)["error"]["code"] == "overloaded"
        v0 = session.overload_response(_line(op="ping"), "busy")
        assert v0 == "error busy"
        garbage = session.overload_response("{not json", "busy")
        assert garbage == "error busy"


class TestErrorCodeTaxonomy:
    def test_most_specific_class_wins(self):
        assert error_code(NotConvergentParametersError("x")) \
            == "not-convergent"
        assert error_code(ConvergenceError("x")) == "convergence"
        assert error_code(ValidationError("x")) == "validation"
        assert error_code(BackendError("x")) == "backend"
        assert error_code(SchemaError("x")) == "schema"
        assert error_code(DatasetError("x")) == "dataset"
        assert error_code(ReproError("x")) == "repro"

    def test_builtin_and_unknown_exceptions(self):
        assert error_code(ValueError("x")) == "bad-value"
        assert error_code(TypeError("x")) == "bad-value"
        assert error_code(OverflowError("x")) == "bad-value"
        assert error_code(RuntimeError("x")) == "internal"

    def test_taxonomy_is_ordered_most_specific_first(self):
        classes = [entry[0] for entry in ERROR_CODES]
        for index, cls in enumerate(classes):
            for later in classes[index + 1:]:
                assert not issubclass(later, cls) or later is cls, (
                    f"{later.__name__} is shadowed by {cls.__name__}")


class TestV0V1Parity:
    """Same facts on both wires: v1 restructures, never re-derives."""

    def _both(self, session, request):
        v0, _ = session.handle_line(_line(**request))
        v1, _ = session.handle_line(_line(v=1, **request))
        return v0, json.loads(v1)

    def test_load_graph_parity(self):
        session = ServiceSession(window_seconds=0.0)
        v0, v1 = self._both(session, dict(
            op="load_graph", name="g2", edges=[[0, 1], [1, 2]]))
        # v0 created the graph; re-register under a new name for v1.
        assert v0 == "ok graph name=g2 nodes=3 edges=2 version=0"
        assert v1["error"]["code"] == "validation"  # duplicate name
        response, _ = session.handle_line(_line(
            v=1, op="load_graph", name="g3", edges=[[0, 1], [1, 2]]))
        body = json.loads(response)
        assert (body["name"], body["nodes"], body["edges"],
                body["version"]) == ("g3", 3, 2, 0)

    def test_query_parity(self):
        session = _session()
        request = dict(op="query", graph="g", coupling="h",
                       beliefs=[[0, 0, 0.9], [0, 1, -0.9]], limit=2)
        v0, v1 = self._both(session, request)
        head, _, labels_text = v0.partition(" labels=")
        assert head.startswith("ok query method=LinBP iterations=")
        assert v1["method"] == "LinBP"
        assert f"iterations={v1['iterations']}" in head
        assert f"converged={'true' if v1['converged'] else 'false'}" in head
        v0_pairs = [pair for pair in labels_text.split(",")
                    if pair != "..."]
        v0_labels = [pair.split(":") for pair in v0_pairs]
        assert [[int(node), label] for node, label in v0_labels] \
            == v1["labels"]
        assert v1["truncated"] == labels_text.endswith(",...")

    def test_ping_parity(self):
        session = _session()
        v0, v1 = self._both(session, dict(op="ping"))
        assert v0 == "ok pong"
        assert v1 == {"ok": True, "v": 1, "op": "ping"}

    def test_error_message_parity(self):
        session = _session()
        v0, v1 = self._both(session, dict(op="nope"))
        assert v0 == "error " + v1["error"]["message"]
