"""Streaming service behaviour: staleness bounds, history, repair, drift.

The service-layer half of the ISSUE 8 tentpole: queries may pin
snapshots up to ``max_staleness`` versions old (served from the result
cache's history probe), edge updates on sharded graphs repair the
partition incrementally, and accumulated cut drift schedules a
background full re-partition that swaps in without invalidating
anything.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import linbp
from repro.coupling import synthetic_residual_matrix
from repro.engine import clear_plan_cache
from repro.exceptions import ValidationError
from repro.graphs import random_graph
from repro.service import PropagationService, QuerySpec, ServiceHarness


@pytest.fixture(autouse=True)
def fresh_cache():
    clear_plan_cache()
    yield
    clear_plan_cache()


def _workload(num_nodes=40, seed=11):
    graph = random_graph(num_nodes, 0.12, seed=7)
    coupling = synthetic_residual_matrix(epsilon=0.05)
    rng = np.random.default_rng(seed)
    explicit = np.zeros((graph.num_nodes, 3))
    for node in rng.choice(graph.num_nodes, size=6, replace=False):
        values = rng.uniform(-0.1, 0.1, size=2)
        explicit[node] = [values[0], values[1], -values.sum()]
    return graph, coupling, explicit


def _missing_edges(graph, count, seed=29):
    rng = np.random.default_rng(seed)
    chosen = set()
    edges = []
    while len(edges) < count:
        u, v = (int(x) for x in rng.integers(0, graph.num_nodes, size=2))
        if u == v or (u, v) in chosen or (v, u) in chosen \
                or graph.adjacency[u, v] != 0:
            continue
        chosen.add((u, v))
        edges.append((u, v))
    return edges


class TestSnapshotHistory:
    def test_history_window_trims_oldest(self):
        graph, _, _ = _workload()
        service = PropagationService(window_seconds=0.0, snapshot_history=2)
        service.register_graph("g", graph)
        for edge in _missing_edges(graph, 4):
            service.update("g", new_edges=[edge])
        history = service.snapshot_history("g")
        assert [snapshot.version for snapshot in history] == [2, 3, 4]
        assert history[-1] is service.snapshot("g")

    def test_zero_history_keeps_only_current(self):
        graph, _, _ = _workload()
        service = PropagationService(window_seconds=0.0, snapshot_history=0)
        service.register_graph("g", graph)
        service.update("g", new_edges=[_missing_edges(graph, 1)[0]])
        assert [s.version for s in service.snapshot_history("g")] == [1]


class TestBoundedStaleness:
    def test_stale_read_serves_previous_version_from_cache(self):
        graph, coupling, explicit = _workload()
        service = PropagationService(window_seconds=0.0)
        service.register_graph("g", graph)
        first = service.query("g", coupling, explicit)
        assert first.extra["snapshot_version"] == 0
        service.update("g", new_edges=[_missing_edges(graph, 1)[0]])
        stale = service.query("g", coupling, explicit, max_staleness=1)
        assert stale is first
        assert service.stats()["stale_hits"] == 1

    def test_fresh_read_recomputes_on_the_new_version(self):
        graph, coupling, explicit = _workload()
        service = PropagationService(window_seconds=0.0)
        service.register_graph("g", graph)
        service.query("g", coupling, explicit)
        edge = _missing_edges(graph, 1)[0]
        snapshot = service.update("g", new_edges=[edge])
        fresh = service.query("g", coupling, explicit)
        assert fresh.extra["snapshot_version"] == 1
        direct = linbp(snapshot.graph, coupling, explicit)
        assert np.abs(fresh.beliefs - direct.beliefs).max() < 1e-10
        assert service.stats()["stale_hits"] == 0

    def test_staleness_bound_is_respected(self):
        graph, coupling, explicit = _workload()
        service = PropagationService(window_seconds=0.0)
        service.register_graph("g", graph)
        service.query("g", coupling, explicit)
        for edge in _missing_edges(graph, 2):
            service.update("g", new_edges=[edge])
        # The version-0 result is two versions old now: a bound of 2
        # may serve it, a bound of 1 must not (and the probe prefers
        # the freshest cached version, so run the loose read first).
        loose = service.query("g", coupling, explicit, max_staleness=2)
        assert loose.extra["snapshot_version"] == 0
        assert service.stats()["stale_hits"] == 1
        bounded = service.query("g", coupling, explicit, max_staleness=1)
        assert bounded.extra["snapshot_version"] == 2

    def test_negative_staleness_rejected(self):
        graph, coupling, explicit = _workload()
        service = PropagationService(window_seconds=0.0)
        service.register_graph("g", graph)
        with pytest.raises(ValidationError):
            service.query("g", coupling, explicit, max_staleness=-1)

    def test_stale_hit_requires_matching_params(self):
        graph, coupling, explicit = _workload()
        service = PropagationService(window_seconds=0.0)
        service.register_graph("g", graph)
        service.query("g", coupling, explicit, QuerySpec(num_iterations=4))
        service.update("g", new_edges=[_missing_edges(graph, 1)[0]])
        other = service.query("g", coupling, explicit,
                              QuerySpec(num_iterations=6), max_staleness=1)
        assert other.extra["snapshot_version"] == 1
        assert service.stats()["stale_hits"] == 0


class TestIncrementalRepair:
    def _sharded(self, graph, **kwargs):
        service = PropagationService(window_seconds=0.0, shards=2,
                                     shard_executor="sequential", **kwargs)
        service.register_graph("g", graph)
        return service

    def test_edge_update_repairs_instead_of_rebuilding(self):
        graph, coupling, explicit = _workload(num_nodes=80)
        with self._sharded(graph) as service:
            snapshot = service.update(
                "g", new_edges=_missing_edges(graph, 3))
            info = service.stats()["shards"]["g"]
            assert info["incremental_repairs"] == 1
            assert info["full_repartitions"] == 0
            result = service.query("g", coupling, explicit,
                                   QuerySpec(num_iterations=8))
            direct = linbp(snapshot.graph, coupling, explicit,
                           num_iterations=8)
            assert np.abs(result.beliefs - direct.beliefs).max() < 1e-10

    def test_repair_can_be_disabled(self):
        graph, _, _ = _workload(num_nodes=80)
        with self._sharded(graph, incremental_repartition=False) as service:
            service.update("g", new_edges=_missing_edges(graph, 2))
            info = service.stats()["shards"]["g"]
            assert info["incremental_repairs"] == 0

    def test_drift_triggers_background_repartition(self):
        graph, coupling, explicit = _workload(num_nodes=80)
        with self._sharded(graph, repartition_drift=0.0) as service:
            assignment = service.snapshot("g").partition.assignment
            left = np.flatnonzero(assignment == 0)
            right = np.flatnonzero(assignment == 1)
            delta = [(int(u), int(v)) for u in left[:5] for v in right[:5]
                     if graph.adjacency[int(u), int(v)] == 0]
            assert delta
            snapshot = service.update("g", new_edges=delta)
            assert service.join_repartitions(timeout=30)
            info = service.stats()["shards"]["g"]
            assert info["full_repartitions"] == 1
            assert info["cut_drift"] == 0.0
            assert info["repartition_pending"] is False
            # Same graph and version after the swap; queries unaffected.
            current = service.snapshot("g")
            assert current.version == snapshot.version == 1
            assert current.graph is snapshot.graph
            result = service.query("g", coupling, explicit,
                                   QuerySpec(num_iterations=8))
            direct = linbp(current.graph, coupling, explicit,
                           num_iterations=8)
            assert np.abs(result.beliefs - direct.beliefs).max() < 1e-10

    def test_repartition_now_resets_drift(self):
        graph, _, _ = _workload(num_nodes=80)
        with self._sharded(graph, repartition_drift=None) as service:
            assignment = service.snapshot("g").partition.assignment
            left = np.flatnonzero(assignment == 0)
            right = np.flatnonzero(assignment == 1)
            delta = [(int(u), int(v)) for u in left[:4] for v in right[:4]
                     if graph.adjacency[int(u), int(v)] == 0]
            service.update("g", new_edges=delta)
            before = service.stats()["shards"]["g"]
            assert before["cut_drift"] > 0.0
            assert service.repartition_now("g") is True
            after = service.stats()["shards"]["g"]
            assert after["full_repartitions"] == 1
            assert after["cut_drift"] == 0.0

    def test_repartition_now_is_a_noop_for_unsharded_graphs(self):
        graph, _, _ = _workload()
        service = PropagationService(window_seconds=0.0)
        service.register_graph("g", graph)
        assert service.repartition_now("g") is False


class TestMixedHarness:
    def test_run_mixed_interleaves_updates_and_queries(self):
        graph, coupling, explicit = _workload(num_nodes=80)
        service = PropagationService(window_seconds=0.0, shards=2,
                                     shard_executor="sequential",
                                     repartition_drift=None)
        service.register_graph("g", graph)
        edges = _missing_edges(graph, 2)
        spec = QuerySpec(num_iterations=6)
        requests = [
            dict(op="update", graph_name="g", new_edges=[edges[0]]),
            dict(graph_name="g", coupling=coupling,
                 explicit_residuals=explicit, spec=spec),
            dict(op="update", graph_name="g", new_edges=[edges[1]]),
            dict(graph_name="g", coupling=coupling,
                 explicit_residuals=explicit, spec=spec, max_staleness=1),
        ]
        run = ServiceHarness(service).run_mixed(requests, num_clients=1)
        assert len(run.results) == 4
        assert len(run.latencies) == 4
        assert run.results[0].version == 1
        assert run.results[2].version == 2
        assert run.percentile(50) <= run.p99
        graphs = {1: run.results[0].graph, 2: run.results[2].graph}
        for index in (1, 3):
            result = run.results[index]
            direct = linbp(graphs[result.extra["snapshot_version"]],
                           coupling, explicit, num_iterations=6)
            assert np.abs(result.beliefs - direct.beliefs).max() < 1e-10
        assert service.stats()["shards"]["g"]["incremental_repairs"] == 2

    def test_unknown_op_rejected(self):
        graph, coupling, explicit = _workload()
        service = PropagationService(window_seconds=0.0)
        service.register_graph("g", graph)
        with pytest.raises(ValidationError):
            ServiceHarness(service).run_mixed(
                [dict(op="delete", graph_name="g")], num_clients=1)

    def test_percentile_validation(self):
        graph, coupling, explicit = _workload()
        service = PropagationService(window_seconds=0.0)
        service.register_graph("g", graph)
        run = ServiceHarness(service).run_sequential(
            [dict(graph_name="g", coupling=coupling,
                  explicit_residuals=explicit)])
        assert run.percentile(100) == max(run.latencies)
        with pytest.raises(ValidationError):
            run.percentile(0)
        with pytest.raises(ValidationError):
            run.percentile(101)
