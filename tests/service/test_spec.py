"""QuerySpec: validation, hashing, batch keys, and the deprecated shim."""

from __future__ import annotations

import numpy as np
import pytest

from repro.coupling import synthetic_residual_matrix
from repro.exceptions import UnknownBackendError, ValidationError
from repro.graphs import random_graph
from repro.service import PropagationService, QuerySpec


def _workload(num_nodes: int = 30):
    graph = random_graph(num_nodes, 0.15, seed=3)
    coupling = synthetic_residual_matrix(epsilon=0.05)
    explicit = np.zeros((graph.num_nodes, 3))
    explicit[0] = [0.1, -0.05, -0.05]
    return graph, coupling, explicit


class TestConstruction:
    def test_defaults(self):
        spec = QuerySpec()
        assert spec.method == "linbp"
        assert spec.max_iterations == 100
        assert spec.tolerance == 1e-10
        assert spec.num_iterations is None
        assert spec.dtype == "float64"
        assert spec.precision == "strict"

    def test_frozen_and_hashable(self):
        spec = QuerySpec()
        with pytest.raises(AttributeError):
            spec.method = "sbp"
        assert spec == QuerySpec()
        assert hash(spec) == hash(QuerySpec())
        assert QuerySpec(method="sbp") != spec

    def test_dtype_canonicalised_to_name(self):
        assert QuerySpec(dtype=np.float32).dtype == "float32"
        assert QuerySpec(dtype="float32") == QuerySpec(dtype=np.float32)
        assert QuerySpec().numpy_dtype == np.dtype(np.float64)

    def test_numeric_coercion(self):
        spec = QuerySpec(max_iterations="50", tolerance="1e-8",
                         num_iterations="7")
        assert spec.max_iterations == 50
        assert spec.tolerance == 1e-8
        assert spec.num_iterations == 7

    @pytest.mark.parametrize("kwargs", [
        dict(method="bp"),
        dict(method="linbp", max_iterations=0),
        dict(tolerance=0.0),
        dict(tolerance=-1e-3),
        dict(num_iterations=0),
        dict(max_iterations="many"),
        dict(precision="fast"),
    ])
    def test_invalid_specs_rejected(self, kwargs):
        with pytest.raises(ValidationError):
            QuerySpec(**kwargs)

    def test_unknown_dtype_raises_backend_error(self):
        with pytest.raises(UnknownBackendError):
            QuerySpec(dtype="int32")

    def test_family_and_echo(self):
        assert QuerySpec(method="linbp").family == "linbp"
        assert QuerySpec(method="linbp").echo is True
        assert QuerySpec(method="linbp*").family == "linbp"
        assert QuerySpec(method="linbp*").echo is False
        assert QuerySpec(method="sbp").family == "sbp"


class TestSolverParams:
    def test_linbp_key_carries_full_budget(self):
        spec = QuerySpec(num_iterations=5)
        assert spec.solver_params() == (
            "linbp", "float64", "strict", 100, 1e-10, 5)

    def test_sbp_key_ignores_iterative_budget(self):
        a = QuerySpec(method="sbp", max_iterations=50)
        b = QuerySpec(method="sbp", max_iterations=200, tolerance=1e-6)
        assert a.solver_params() == b.solver_params()

    def test_sbp_auto_key_keeps_tolerance(self):
        a = QuerySpec(method="sbp", precision="auto", tolerance=1e-3)
        b = QuerySpec(method="sbp", precision="auto", tolerance=1e-6)
        assert a.solver_params() != b.solver_params()

    def test_distinct_methods_never_share_keys(self):
        keys = {QuerySpec(method=m).solver_params()
                for m in ("linbp", "linbp*", "sbp")}
        assert len(keys) == 3


class TestFromRequest:
    def test_reads_only_spec_fields(self):
        spec = QuerySpec.from_request({
            "op": "query", "graph": "g", "beliefs": [[0, 0, 0.1]],
            "method": "linbp*", "num_iterations": 4, "dtype": "float32"})
        assert spec == QuerySpec(method="linbp*", num_iterations=4,
                                 dtype="float32")

    def test_missing_fields_keep_defaults(self):
        assert QuerySpec.from_request({"op": "query"}) == QuerySpec()

    def test_none_values_keep_defaults(self):
        assert QuerySpec.from_request({"method": None}) == QuerySpec()

    def test_malformed_field_raises_validation(self):
        with pytest.raises(ValidationError):
            QuerySpec.from_request({"tolerance": "soon"})


class TestDeprecatedShim:
    def test_legacy_kwargs_warn_and_match_spec_path(self):
        graph, coupling, explicit = _workload()
        service = PropagationService(window_seconds=0.0)
        service.register_graph("g", graph)
        via_spec = service.query("g", coupling, explicit,
                                 QuerySpec(num_iterations=6))
        with pytest.warns(DeprecationWarning):
            via_kwargs = service.query("g", coupling, explicit,
                                       num_iterations=6)
        assert np.array_equal(via_spec.beliefs, via_kwargs.beliefs)
        assert via_kwargs.iterations == 6

    def test_string_spec_is_treated_as_legacy_method(self):
        graph, coupling, explicit = _workload()
        service = PropagationService(window_seconds=0.0)
        service.register_graph("g", graph)
        with pytest.warns(DeprecationWarning):
            result = service.query("g", coupling, explicit, "linbp*")
        assert result.method == "LinBP*"

    def test_spec_plus_legacy_kwargs_rejected(self):
        graph, coupling, explicit = _workload()
        service = PropagationService(window_seconds=0.0)
        service.register_graph("g", graph)
        with pytest.raises(ValidationError):
            service.query("g", coupling, explicit, QuerySpec(),
                          num_iterations=3)

    def test_unknown_kwarg_raises_type_error(self):
        graph, coupling, explicit = _workload()
        service = PropagationService(window_seconds=0.0)
        service.register_graph("g", graph)
        with pytest.raises(TypeError):
            service.query("g", coupling, explicit, iterations=3)

    def test_non_spec_object_rejected(self):
        graph, coupling, explicit = _workload()
        service = PropagationService(window_seconds=0.0)
        service.register_graph("g", graph)
        with pytest.raises(ValidationError):
            service.query("g", coupling, explicit, {"method": "linbp"})
