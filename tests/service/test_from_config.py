"""PropagationService.from_config: strict, actionable artifact validation.

Every rejection must name the offending key and the accepted values —
the artifact is operator-edited JSON, so "invalid config" without a
pointer into the document is a bug.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.coupling import synthetic_residual_matrix
from repro.exceptions import ValidationError
from repro.graphs import random_graph
from repro.service import PropagationService, QuerySpec


def _artifact(**overrides):
    config = {
        "version": 1,
        "kind": "repro-serving-config",
        "service": {
            "shards": 1,
            "shard_method": "bfs",
            "shard_executor": "sequential",
            "window_ms": 2.0,
            "max_batch": 16,
            "result_cache_size": 256,
            "result_ttl_seconds": 300.0,
            "snapshot_history": 4,
            "incremental_repartition": True,
            "repartition_drift": None,
        },
        "query": {"dtype": "float64", "precision": "strict",
                  "tolerance": 1e-8},
        "meta": {"run_id": "run-abc", "anything": ["goes", "here"]},
    }
    config.update(overrides)
    return config


class TestAcceptance:
    def test_full_artifact_builds_a_configured_service(self):
        service = PropagationService.from_config(_artifact())
        try:
            assert service.batcher.window_seconds == pytest.approx(0.002)
            assert service.batcher.max_batch == 16
            assert service.default_spec == QuerySpec(tolerance=1e-8)
        finally:
            service.close()

    def test_window_ms_maps_to_seconds(self):
        artifact = _artifact()
        artifact["service"]["window_ms"] = 7.5
        service = PropagationService.from_config(artifact)
        try:
            assert service.batcher.window_seconds == pytest.approx(0.0075)
        finally:
            service.close()

    def test_query_and_meta_and_kind_are_optional(self):
        artifact = {"version": 1, "service": {"shards": 1}}
        service = PropagationService.from_config(artifact)
        try:
            assert service.default_spec is None
        finally:
            service.close()

    def test_partial_service_section_keeps_constructor_defaults(self):
        artifact = {"version": 1, "service": {"max_batch": 4}}
        service = PropagationService.from_config(artifact)
        try:
            assert service.batcher.max_batch == 4
            assert service.batcher.window_seconds == pytest.approx(0.002)
        finally:
            service.close()

    def test_configured_service_answers_queries(self):
        graph = random_graph(40, 0.1, seed=1)
        coupling = synthetic_residual_matrix(epsilon=0.005)
        service = PropagationService.from_config(_artifact())
        try:
            service.register_graph("g", graph)
            explicit = np.zeros((40, coupling.num_classes))
            explicit[0, 0] = 0.1
            explicit[0, 1] = -0.1
            # spec=None → the artifact's query section answers.
            result = service.query("g", coupling, explicit, spec=None)
            assert result.beliefs.shape == (40, coupling.num_classes)
        finally:
            service.close()


class TestRejection:
    def test_non_dict_config(self):
        with pytest.raises(ValidationError, match="JSON object"):
            PropagationService.from_config(["not", "a", "dict"])

    def test_unknown_top_level_key_names_accepted_keys(self):
        with pytest.raises(ValidationError) as excinfo:
            PropagationService.from_config(_artifact(bogus=1))
        assert "'bogus'" in str(excinfo.value)
        assert "'service'" in str(excinfo.value)

    def test_version_required(self):
        artifact = _artifact()
        del artifact["version"]
        with pytest.raises(ValidationError,
                           match="missing the required 'version'"):
            PropagationService.from_config(artifact)

    def test_future_version_rejected(self):
        with pytest.raises(ValidationError,
                           match="unsupported serving-config version 2"):
            PropagationService.from_config(_artifact(version=2))

    def test_boolean_version_rejected(self):
        # JSON true must not satisfy version == 1.
        with pytest.raises(ValidationError, match="unsupported"):
            PropagationService.from_config(_artifact(version=True))

    def test_wrong_kind_rejected(self):
        with pytest.raises(ValidationError, match="kind"):
            PropagationService.from_config(_artifact(kind="other-thing"))

    def test_service_section_required_and_must_be_object(self):
        with pytest.raises(ValidationError,
                           match="missing the required 'service'"):
            PropagationService.from_config({"version": 1})
        with pytest.raises(ValidationError, match="must be an object"):
            PropagationService.from_config(
                {"version": 1, "service": [1, 2]})

    def test_unknown_service_key_names_accepted_keys(self):
        artifact = _artifact()
        artifact["service"]["batch_window"] = 2.0
        with pytest.raises(ValidationError) as excinfo:
            PropagationService.from_config(artifact)
        message = str(excinfo.value)
        assert "'batch_window'" in message
        assert "'window_ms'" in message  # the fix is in the message

    @pytest.mark.parametrize("key,bad,accepted", [
        ("shards", 0, "an integer >= 1"),
        ("shards", 2.5, "an integer >= 1"),
        ("shards", True, "an integer >= 1"),
        ("shard_method", "metis", "one of ['bfs', 'hash']"),
        ("shard_executor", "threads", "one of ['pool', 'sequential']"),
        ("window_ms", -1.0, "a number >= 0"),
        ("window_ms", "fast", "a number >= 0"),
        ("max_batch", 0, "an integer >= 1"),
        ("result_cache_size", -1, "an integer >= 0"),
        ("result_ttl_seconds", -5.0, "a number >= 0 or null"),
        ("snapshot_history", -1, "an integer >= 0"),
        ("incremental_repartition", "yes", "true or false"),
        ("repartition_drift", -0.1, "a number >= 0 or null"),
    ])
    def test_bad_value_names_key_and_accepted_values(self, key, bad,
                                                     accepted):
        artifact = _artifact()
        artifact["service"][key] = bad
        with pytest.raises(ValidationError) as excinfo:
            PropagationService.from_config(artifact)
        message = str(excinfo.value)
        assert f"'service.{key}'" in message
        assert accepted in message
        assert repr(bad) in message

    def test_query_section_unknown_key_rejected(self):
        artifact = _artifact()
        artifact["query"]["solver"] = "jacobi"
        with pytest.raises(ValidationError) as excinfo:
            PropagationService.from_config(artifact)
        message = str(excinfo.value)
        assert "'solver'" in message
        assert "'tolerance'" in message

    def test_query_section_bad_value_uses_spec_validation(self):
        artifact = _artifact()
        artifact["query"]["method"] = "jacobi"
        with pytest.raises(ValidationError, match="unknown method"):
            PropagationService.from_config(artifact)

    def test_meta_must_be_object_when_present(self):
        with pytest.raises(ValidationError, match="'meta'"):
            PropagationService.from_config(_artifact(meta="provenance"))


class TestDefaultSpec:
    def test_explicit_spec_still_wins_over_default_spec(self):
        service = PropagationService.from_config(_artifact())
        try:
            assert service._resolve_spec(None, {}) is service.default_spec
            tight = QuerySpec(tolerance=1e-12)
            assert service._resolve_spec(tight, {}) is tight
        finally:
            service.close()

    def test_plain_construction_has_no_default_spec(self):
        service = PropagationService()
        try:
            assert service.default_spec is None
        finally:
            service.close()
