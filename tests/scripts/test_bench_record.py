"""bench_record.py hardening: bad baselines fail fast, before any benchmark.

These tests exercise the compare path's baseline validation through the
real CLI (a subprocess, like CI runs it).  No benchmark ever runs — the
whole point is that a missing or malformed baseline exits non-zero with
an actionable message *immediately*.
"""

from __future__ import annotations

import json
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[2]
SCRIPT = REPO_ROOT / "scripts" / "bench_record.py"


def _run(*arguments):
    return subprocess.run(
        [sys.executable, str(SCRIPT), *arguments],
        capture_output=True, text=True, timeout=60)


class TestBaselineValidation:
    def test_missing_baseline_file_fails_with_message(self, tmp_path):
        completed = _run("--compare", "--baseline",
                         str(tmp_path / "BENCH_missing.json"))
        assert completed.returncode != 0
        assert "does not exist" in completed.stderr
        assert "--record" in completed.stderr

    def test_invalid_json_fails_with_message(self, tmp_path):
        baseline = tmp_path / "BENCH_bad.json"
        baseline.write_text("{not json")
        completed = _run("--compare", "--baseline", str(baseline))
        assert completed.returncode != 0
        assert "not valid JSON" in completed.stderr

    def test_missing_kernels_table_fails_with_message(self, tmp_path):
        baseline = tmp_path / "BENCH_empty.json"
        baseline.write_text(json.dumps({"threshold": 0.2}))
        completed = _run("--compare", "--baseline", str(baseline))
        assert completed.returncode != 0
        assert "no 'kernels' table" in completed.stderr

    def test_kernel_without_min_seconds_fails_with_message(self, tmp_path):
        baseline = tmp_path / "BENCH_partial.json"
        baseline.write_text(json.dumps(
            {"kernels": {"test_something": {"mean_seconds": 1.0}}}))
        completed = _run("--compare", "--baseline", str(baseline))
        assert completed.returncode != 0
        assert "min_seconds" in completed.stderr
        assert "test_something" in completed.stderr

    def test_non_numeric_min_seconds_fails_with_message(self, tmp_path):
        baseline = tmp_path / "BENCH_text.json"
        baseline.write_text(json.dumps(
            {"kernels": {"k": {"min_seconds": "fast"}}}))
        completed = _run("--compare", "--baseline", str(baseline))
        assert completed.returncode != 0
        assert "non-numeric" in completed.stderr

    def test_record_and_smoke_are_mutually_exclusive(self):
        completed = _run("--record", "--smoke")
        assert completed.returncode != 0
        assert "meaningless" in completed.stderr


class TestSuites:
    def test_shard_suite_defaults_to_shard_baseline(self, tmp_path):
        # With no BENCH file at the given path, the error message names
        # the resolved baseline — proving the suite switched defaults.
        completed = _run("--compare", "--suite", "shard", "--baseline",
                         str(tmp_path / "BENCH_shard.json"))
        assert completed.returncode != 0
        assert "BENCH_shard.json" in completed.stderr

    def test_unknown_suite_rejected_listing_choices(self):
        completed = _run("--compare", "--suite", "turbo")
        assert completed.returncode != 0
        assert "unknown benchmark suite 'turbo'" in completed.stderr
        # The error must hand the operator the fix: every valid name.
        for name in ("engine", "shard", "sql", "precision", "all"):
            assert name in completed.stderr

    def test_precision_suite_defaults_to_precision_baseline(self, tmp_path):
        completed = _run("--compare", "--suite", "precision", "--baseline",
                         str(tmp_path / "BENCH_precision.json"))
        assert completed.returncode != 0
        assert "BENCH_precision.json" in completed.stderr

    def test_suite_all_rejects_baseline_and_target_overrides(self):
        completed = _run("--compare", "--suite", "all",
                         "--baseline", "BENCH_custom.json")
        assert completed.returncode != 0
        assert "each suite's own baseline" in completed.stderr

    def test_suite_all_expands_to_every_suite(self):
        sys.path.insert(0, str(SCRIPT.parent))
        try:
            import bench_record
            assert bench_record.resolve_suites("all") == \
                sorted(bench_record.SUITES)
            assert bench_record.resolve_suites("precision") == ["precision"]
        finally:
            sys.path.remove(str(SCRIPT.parent))

    def test_repo_baselines_are_valid(self):
        # The committed baselines must always pass validation.
        sys.path.insert(0, str(SCRIPT.parent))
        try:
            import bench_record
            for name in ("BENCH_sbp.json", "BENCH_shard.json",
                         "BENCH_precision.json", "BENCH_tune.json"):
                baseline = bench_record.load_baseline(REPO_ROOT / name)
                assert baseline["kernels"]
        finally:
            sys.path.remove(str(SCRIPT.parent))


class TestSuiteRegistry:
    """The single-registry contract: registering a suite IS wiring it.

    A benchmark suite that exists on disk but was never registered (or
    half-registered: missing baseline, dangling target) must fail here,
    not silently drop out of ``--suite all`` and the CI smoke jobs.
    """

    @staticmethod
    def _registry():
        sys.path.insert(0, str(SCRIPT.parent))
        try:
            import bench_record
            return bench_record
        finally:
            sys.path.remove(str(SCRIPT.parent))

    def test_every_committed_baseline_belongs_to_a_suite(self):
        bench_record = self._registry()
        registered = {suite["baseline"]
                      for suite in bench_record.SUITES.values()}
        committed = {path.name for path in REPO_ROOT.glob("BENCH_*.json")}
        assert committed == registered, (
            "committed BENCH_*.json files and registered suite baselines "
            f"disagree: only committed {sorted(committed - registered)}, "
            f"only registered {sorted(registered - committed)}")

    def test_every_suite_target_exists(self):
        bench_record = self._registry()
        for name, suite in bench_record.SUITES.items():
            for target in suite["targets"]:
                assert (REPO_ROOT / target).exists(), (
                    f"suite {name!r} names a missing target {target!r}")

    def test_baselines_are_not_shared_between_suites(self):
        bench_record = self._registry()
        baselines = [suite["baseline"]
                     for suite in bench_record.SUITES.values()]
        assert len(baselines) == len(set(baselines))

    def test_tune_suite_is_registered(self):
        bench_record = self._registry()
        assert bench_record.SUITES["tune"]["baseline"] == "BENCH_tune.json"
        assert bench_record.SUITES["tune"]["targets"] == [
            "benchmarks/test_bench_tune.py"]

    def test_suite_help_derives_from_registry(self):
        bench_record = self._registry()
        help_text = bench_record.suite_help()
        for name, suite in bench_record.SUITES.items():
            assert name in help_text
            assert suite["baseline"] in help_text
        assert bench_record.ALL_SUITES in help_text

    def test_unknown_suite_error_lists_every_registered_name(self):
        bench_record = self._registry()
        completed = _run("--compare", "--suite", "turbo")
        assert completed.returncode != 0
        for name in bench_record.SUITES:
            assert name in completed.stderr

    def test_duplicate_registration_rejected(self):
        import pytest

        bench_record = self._registry()
        with pytest.raises(ValueError, match="already registered"):
            bench_record.register_suite(
                "engine", ["benchmarks/test_bench_engine_batch.py"],
                "BENCH_dup.json", "duplicate")
        with pytest.raises(ValueError, match="pseudo-suite"):
            bench_record.register_suite(
                bench_record.ALL_SUITES, ["x"], "BENCH_x.json", "x")
