"""bench_record.py hardening: bad baselines fail fast, before any benchmark.

These tests exercise the compare path's baseline validation through the
real CLI (a subprocess, like CI runs it).  No benchmark ever runs — the
whole point is that a missing or malformed baseline exits non-zero with
an actionable message *immediately*.
"""

from __future__ import annotations

import json
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[2]
SCRIPT = REPO_ROOT / "scripts" / "bench_record.py"


def _run(*arguments):
    return subprocess.run(
        [sys.executable, str(SCRIPT), *arguments],
        capture_output=True, text=True, timeout=60)


class TestBaselineValidation:
    def test_missing_baseline_file_fails_with_message(self, tmp_path):
        completed = _run("--compare", "--baseline",
                         str(tmp_path / "BENCH_missing.json"))
        assert completed.returncode != 0
        assert "does not exist" in completed.stderr
        assert "--record" in completed.stderr

    def test_invalid_json_fails_with_message(self, tmp_path):
        baseline = tmp_path / "BENCH_bad.json"
        baseline.write_text("{not json")
        completed = _run("--compare", "--baseline", str(baseline))
        assert completed.returncode != 0
        assert "not valid JSON" in completed.stderr

    def test_missing_kernels_table_fails_with_message(self, tmp_path):
        baseline = tmp_path / "BENCH_empty.json"
        baseline.write_text(json.dumps({"threshold": 0.2}))
        completed = _run("--compare", "--baseline", str(baseline))
        assert completed.returncode != 0
        assert "no 'kernels' table" in completed.stderr

    def test_kernel_without_min_seconds_fails_with_message(self, tmp_path):
        baseline = tmp_path / "BENCH_partial.json"
        baseline.write_text(json.dumps(
            {"kernels": {"test_something": {"mean_seconds": 1.0}}}))
        completed = _run("--compare", "--baseline", str(baseline))
        assert completed.returncode != 0
        assert "min_seconds" in completed.stderr
        assert "test_something" in completed.stderr

    def test_non_numeric_min_seconds_fails_with_message(self, tmp_path):
        baseline = tmp_path / "BENCH_text.json"
        baseline.write_text(json.dumps(
            {"kernels": {"k": {"min_seconds": "fast"}}}))
        completed = _run("--compare", "--baseline", str(baseline))
        assert completed.returncode != 0
        assert "non-numeric" in completed.stderr

    def test_record_and_smoke_are_mutually_exclusive(self):
        completed = _run("--record", "--smoke")
        assert completed.returncode != 0
        assert "meaningless" in completed.stderr


class TestSuites:
    def test_shard_suite_defaults_to_shard_baseline(self, tmp_path):
        # With no BENCH file at the given path, the error message names
        # the resolved baseline — proving the suite switched defaults.
        completed = _run("--compare", "--suite", "shard", "--baseline",
                         str(tmp_path / "BENCH_shard.json"))
        assert completed.returncode != 0
        assert "BENCH_shard.json" in completed.stderr

    def test_unknown_suite_rejected_listing_choices(self):
        completed = _run("--compare", "--suite", "turbo")
        assert completed.returncode != 0
        assert "unknown benchmark suite 'turbo'" in completed.stderr
        # The error must hand the operator the fix: every valid name.
        for name in ("engine", "shard", "sql", "precision", "all"):
            assert name in completed.stderr

    def test_precision_suite_defaults_to_precision_baseline(self, tmp_path):
        completed = _run("--compare", "--suite", "precision", "--baseline",
                         str(tmp_path / "BENCH_precision.json"))
        assert completed.returncode != 0
        assert "BENCH_precision.json" in completed.stderr

    def test_suite_all_rejects_baseline_and_target_overrides(self):
        completed = _run("--compare", "--suite", "all",
                         "--baseline", "BENCH_custom.json")
        assert completed.returncode != 0
        assert "each suite's own baseline" in completed.stderr

    def test_suite_all_expands_to_every_suite(self):
        sys.path.insert(0, str(SCRIPT.parent))
        try:
            import bench_record
            assert bench_record.resolve_suites("all") == \
                sorted(bench_record.SUITES)
            assert bench_record.resolve_suites("precision") == ["precision"]
        finally:
            sys.path.remove(str(SCRIPT.parent))

    def test_repo_baselines_are_valid(self):
        # The committed baselines must always pass validation.
        sys.path.insert(0, str(SCRIPT.parent))
        try:
            import bench_record
            for name in ("BENCH_sbp.json", "BENCH_shard.json",
                         "BENCH_precision.json"):
                baseline = bench_record.load_baseline(REPO_ROOT / name)
                assert baseline["kernels"]
        finally:
            sys.path.remove(str(SCRIPT.parent))
