"""Unit tests for belief matrices, standardization and top-belief assignment."""

from __future__ import annotations

import numpy as np
import pytest

from repro.beliefs import (
    BeliefMatrix,
    center_probability_matrix,
    explicit_beliefs_from_labels,
    explicit_residuals_from_labels,
    standardize,
    top_belief_sets,
    uncenter_residual_matrix,
)
from repro.exceptions import ValidationError


class TestStandardize:
    """The three worked examples below Definition 11."""

    def test_two_elements(self):
        assert np.allclose(standardize(np.array([1.0, 0.0])), [1.0, -1.0])

    def test_constant_vector_maps_to_zero(self):
        assert np.allclose(standardize(np.array([1.0, 1.0, 1.0])), [0.0, 0.0, 0.0])

    def test_five_elements(self):
        result = standardize(np.array([1.0, 0.0, 0.0, 0.0, 0.0]))
        assert np.allclose(result, [2.0, -0.5, -0.5, -0.5, -0.5])

    def test_scale_invariance(self):
        vector = np.array([4.0, -1.0, -1.0, -1.0, -1.0])
        assert np.allclose(standardize(vector), standardize(10.0 * vector))

    def test_paper_example_same_standardization(self):
        # b_s = [4,-1,-1,-1,-1] and b_t = [40,-10,-10,-10,-10] standardize equally.
        b_s = np.array([4.0, -1.0, -1.0, -1.0, -1.0])
        b_t = 10.0 * b_s
        assert np.allclose(standardize(b_s), standardize(b_t))
        assert np.allclose(standardize(b_s), [2.0, -0.5, -0.5, -0.5, -0.5])


class TestCentering:
    def test_center_and_uncenter_roundtrip(self):
        probabilities = np.array([[0.5, 0.3, 0.2], [1 / 3, 1 / 3, 1 / 3]])
        centered = center_probability_matrix(probabilities)
        assert np.allclose(centered.sum(axis=1), 0.0)
        assert np.allclose(uncenter_residual_matrix(centered), probabilities)

    def test_center_requires_2d(self):
        with pytest.raises(ValidationError):
            center_probability_matrix(np.zeros(3))
        with pytest.raises(ValidationError):
            uncenter_residual_matrix(np.zeros(3))


class TestExplicitBeliefConstruction:
    def test_probabilities_from_labels(self):
        beliefs = explicit_beliefs_from_labels({0: 1}, num_nodes=3, num_classes=2,
                                               confidence=0.9)
        assert np.allclose(beliefs[0], [0.1, 0.9])
        assert np.allclose(beliefs[1], [0.5, 0.5])
        assert np.allclose(beliefs.sum(axis=1), 1.0)

    def test_residuals_from_labels_rows_sum_to_zero(self):
        residuals = explicit_residuals_from_labels({1: 2}, num_nodes=3, num_classes=3,
                                                   magnitude=0.3)
        assert np.allclose(residuals[1], [-0.15, -0.15, 0.3])
        assert np.allclose(residuals[0], 0.0)
        assert np.allclose(residuals.sum(axis=1), 0.0)

    def test_invalid_confidence(self):
        with pytest.raises(ValidationError):
            explicit_beliefs_from_labels({0: 0}, 2, 2, confidence=0.0)
        with pytest.raises(ValidationError):
            explicit_beliefs_from_labels({0: 0}, 2, 2, confidence=1.5)

    def test_invalid_magnitude(self):
        with pytest.raises(ValidationError):
            explicit_residuals_from_labels({0: 0}, 2, 2, magnitude=-0.1)

    def test_out_of_range_node_and_label(self):
        with pytest.raises(ValidationError):
            explicit_residuals_from_labels({5: 0}, 2, 2)
        with pytest.raises(ValidationError):
            explicit_residuals_from_labels({0: 7}, 2, 2)
        with pytest.raises(ValidationError):
            explicit_beliefs_from_labels({5: 0}, 2, 2)


class TestTopBeliefSets:
    def test_unique_maxima(self):
        beliefs = np.array([[0.2, -0.1, -0.1], [-0.3, 0.4, -0.1]])
        assert top_belief_sets(beliefs) == [{0}, {1}]

    def test_ties_are_kept(self):
        beliefs = np.array([[0.2, 0.2, -0.4]])
        assert top_belief_sets(beliefs) == [{0, 1}]

    def test_near_ties_within_tolerance(self):
        beliefs = np.array([[0.2, 0.2 - 1e-14, -0.4]])
        assert top_belief_sets(beliefs, tie_tolerance=1e-10) == [{0, 1}]

    def test_zero_rows_skipped_or_full(self):
        beliefs = np.zeros((1, 3))
        assert top_belief_sets(beliefs) == [set()]
        assert top_belief_sets(beliefs, skip_all_zero=False) == [{0, 1, 2}]

    def test_requires_2d(self):
        with pytest.raises(ValidationError):
            top_belief_sets(np.zeros(3))


class TestBeliefMatrix:
    def test_from_labels(self):
        matrix = BeliefMatrix.from_labels({0: 0, 2: 1}, num_nodes=3, num_classes=2)
        assert matrix.num_nodes == 3 and matrix.num_classes == 2
        assert set(matrix.labeled_nodes().tolist()) == {0, 2}

    def test_from_probabilities(self):
        matrix = BeliefMatrix.from_probabilities(np.array([[0.7, 0.3], [0.5, 0.5]]))
        assert np.allclose(matrix.residuals, [[0.2, -0.2], [0.0, 0.0]])

    def test_probabilities_view(self):
        matrix = BeliefMatrix(np.array([[0.2, -0.2]]))
        assert np.allclose(matrix.probabilities, [[0.7, 0.3]])

    def test_standardized_rows(self):
        matrix = BeliefMatrix(np.array([[1.0, 0.0], [0.0, 0.0]]))
        standardized = matrix.standardized()
        assert np.allclose(standardized[0], [1.0, -1.0])
        assert np.allclose(standardized[1], [0.0, 0.0])

    def test_standard_deviations(self):
        matrix = BeliefMatrix(np.array([[1.0, -1.0], [2.0, -2.0]]))
        assert np.allclose(matrix.standard_deviations(), [1.0, 2.0])

    def test_hard_labels_with_unlabeled(self):
        matrix = BeliefMatrix(np.array([[0.1, -0.1], [0.0, 0.0], [-0.3, 0.3]]))
        assert matrix.hard_labels().tolist() == [0, -1, 1]

    def test_scaling_lemma_12(self):
        # Scaling residuals does not change the standardized assignment.
        matrix = BeliefMatrix(np.array([[0.4, -0.1, -0.3]]))
        scaled = matrix.scaled(7.0)
        assert np.allclose(matrix.standardized(), scaled.standardized())
        assert np.allclose(scaled.residuals, 7.0 * matrix.residuals)

    def test_copy_is_independent(self):
        matrix = BeliefMatrix(np.array([[0.1, -0.1]]))
        duplicate = matrix.copy()
        duplicate.residuals[0, 0] = 99.0
        assert matrix.residuals[0, 0] == pytest.approx(0.1)

    def test_requires_2d(self):
        with pytest.raises(ValidationError):
            BeliefMatrix(np.zeros(4))
