"""Unit tests for the standard loopy BP baseline."""

from __future__ import annotations

import numpy as np
import pytest

from repro.beliefs import BeliefMatrix
from repro.coupling import fraud_matrix, heterophily_matrix, homophily_matrix
from repro.core import BeliefPropagation, belief_propagation, linbp
from repro.exceptions import ValidationError
from repro.graphs import Graph, binary_tree_graph, chain_graph


class TestBPOnTrees:
    """On tree graphs loopy BP is exact and must converge."""

    def test_converges_on_chain(self, binary_chain_workload):
        graph, coupling, explicit = binary_chain_workload
        result = belief_propagation(graph, coupling, explicit)
        assert result.converged
        assert result.method == "BP"

    def test_homophily_splits_chain(self, binary_chain_workload):
        graph, coupling, explicit = binary_chain_workload
        labels = belief_propagation(graph, coupling, explicit).hard_labels()
        assert labels.tolist() == [0, 0, 0, 1, 1, 1]

    def test_heterophily_alternates_on_chain(self):
        graph = chain_graph(5)
        coupling = heterophily_matrix(epsilon=0.4)
        explicit = BeliefMatrix.from_labels({0: 0}, 5, 2, magnitude=0.2).residuals
        labels = belief_propagation(graph, coupling, explicit).hard_labels()
        assert labels.tolist() == [0, 1, 0, 1, 0]

    def test_tree_propagation_from_root(self):
        graph = binary_tree_graph(3)
        coupling = homophily_matrix(epsilon=0.3)
        explicit = BeliefMatrix.from_labels({0: 1}, graph.num_nodes, 2,
                                            magnitude=0.2).residuals
        result = belief_propagation(graph, coupling, explicit)
        assert result.converged
        assert np.all(result.hard_labels() == 1)

    def test_unlabeled_components_stay_uninformative(self):
        graph = Graph.from_edges([(0, 1)], num_nodes=4)
        coupling = homophily_matrix(epsilon=0.2)
        explicit = BeliefMatrix.from_labels({0: 0}, 4, 2).residuals
        result = belief_propagation(graph, coupling, explicit)
        # Nodes 2 and 3 have no information: residual beliefs stay ~0.
        assert np.allclose(result.beliefs[2:], 0.0, atol=1e-12)


class TestBPAgainstLinBP:
    def test_close_to_linbp_for_small_residuals(self, small_random_workload):
        graph, coupling, explicit = small_random_workload
        scaled = coupling.scaled(0.02)
        small_explicit = 0.1 * explicit
        bp_result = belief_propagation(graph, scaled, small_explicit,
                                       max_iterations=300)
        linbp_result = linbp(graph, scaled, small_explicit, max_iterations=300)
        bp_std = bp_result.standardized_beliefs()
        lin_std = linbp_result.standardized_beliefs()
        # Standardized beliefs agree closely in the linearization regime.
        assert np.max(np.abs(bp_std - lin_std)) < 0.15
        # And the top-class assignment agrees on the vast majority of nodes.
        agree = np.mean(bp_result.hard_labels() == linbp_result.hard_labels())
        assert agree > 0.9


class TestBPMechanics:
    def test_damping_allows_convergence_reporting(self, torus, fraud_coupling,
                                                  torus_explicit):
        result = belief_propagation(torus, fraud_coupling, 0.5 * torus_explicit,
                                    damping=0.3, max_iterations=300)
        assert result.extra["damping"] == 0.3
        assert result.converged

    def test_beliefs_are_centered(self, torus, fraud_coupling, torus_explicit):
        result = belief_propagation(torus, fraud_coupling, 0.5 * torus_explicit)
        assert np.allclose(result.beliefs.sum(axis=1), 0.0, atol=1e-9)

    def test_iteration_budget_respected(self, torus, fraud_coupling, torus_explicit):
        result = belief_propagation(torus, fraud_coupling, 0.5 * torus_explicit,
                                    max_iterations=2, tolerance=1e-30)
        assert result.iterations == 2
        assert not result.converged


class TestBPValidation:
    def test_negative_potential_rejected(self, torus):
        # A large epsilon makes H = Ĥ + 1/k negative somewhere: BP cannot run.
        coupling = fraud_matrix(epsilon=2.0)
        with pytest.raises(ValidationError):
            BeliefPropagation(torus, coupling)

    def test_explicit_beliefs_outside_simplex_rejected(self, torus, fraud_coupling):
        explicit = np.zeros((8, 3))
        explicit[0] = [5.0, -2.5, -2.5]  # implies a negative probability
        with pytest.raises(ValidationError):
            belief_propagation(torus, fraud_coupling, explicit)

    def test_shape_checks(self, torus, fraud_coupling):
        with pytest.raises(ValidationError):
            belief_propagation(torus, fraud_coupling, np.zeros((8, 2)))
        with pytest.raises(ValidationError):
            belief_propagation(torus, fraud_coupling, np.zeros((7, 3)))

    def test_parameter_checks(self, torus, fraud_coupling):
        with pytest.raises(ValidationError):
            BeliefPropagation(torus, fraud_coupling, max_iterations=0)
        with pytest.raises(ValidationError):
            BeliefPropagation(torus, fraud_coupling, tolerance=-1.0)
        with pytest.raises(ValidationError):
            BeliefPropagation(torus, fraud_coupling, damping=1.0)
