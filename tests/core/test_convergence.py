"""Unit tests for the convergence criteria (Lemmas 8, 9, 23; Appendix G)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.coupling import CouplingMatrix, fraud_matrix, homophily_matrix
from repro.core import convergence, linbp, linbp_star
from repro.graphs import Graph, chain_graph, ring_graph


class TestExactCriteria:
    def test_example_20_thresholds(self, torus):
        """ε_H ≈ 0.488 for LinBP and ≈ 0.658 for LinBP* (Example 20)."""
        coupling = fraud_matrix()
        assert convergence.max_epsilon_exact(torus, coupling) == pytest.approx(
            0.488, abs=2e-3)
        assert convergence.max_epsilon_exact(torus, coupling,
                                             echo_cancellation=False) == pytest.approx(
            0.658, abs=2e-3)

    def test_exact_criterion_boolean_forms(self, torus):
        assert convergence.exact_convergence_linbp(torus, fraud_matrix(epsilon=0.4))
        assert not convergence.exact_convergence_linbp(torus, fraud_matrix(epsilon=0.55))
        assert convergence.exact_convergence_linbp_star(torus, fraud_matrix(epsilon=0.6))
        assert not convergence.exact_convergence_linbp_star(torus,
                                                            fraud_matrix(epsilon=0.7))

    def test_exact_criterion_predicts_iteration_behaviour(self, torus, torus_explicit):
        """Lemma 8 is necessary AND sufficient: check both sides empirically.

        Just above the threshold the divergent mode grows as ρ^t with ρ barely
        above 1, so we test comfortably above (1.3x) where divergence shows
        within a few hundred iterations.
        """
        threshold = convergence.max_epsilon_exact(torus, fraud_matrix())
        below = fraud_matrix(epsilon=0.95 * threshold)
        above = fraud_matrix(epsilon=1.3 * threshold)
        assert linbp(torus, below, torus_explicit, max_iterations=5000).converged
        diverged = linbp(torus, above, torus_explicit, max_iterations=500)
        assert not diverged.converged
        assert diverged.residual_history[-1] > diverged.residual_history[0]

    def test_star_criterion_predicts_iteration_behaviour(self, torus, torus_explicit):
        threshold = convergence.max_epsilon_exact(torus, fraud_matrix(),
                                                  echo_cancellation=False)
        below = fraud_matrix(epsilon=0.95 * threshold)
        above = fraud_matrix(epsilon=1.3 * threshold)
        assert linbp_star(torus, below, torus_explicit, max_iterations=5000).converged
        assert not linbp_star(torus, above, torus_explicit, max_iterations=500).converged


class TestSufficientCriteria:
    def test_example_20_norm_bounds(self, torus):
        """Norm-based sufficient bounds: ε_H ≈ 0.360 (LinBP), ≈ 0.455 (LinBP*)."""
        coupling = fraud_matrix()
        assert convergence.max_epsilon_sufficient(torus, coupling) == pytest.approx(
            0.360, abs=2e-3)
        assert convergence.max_epsilon_sufficient(
            torus, coupling, echo_cancellation=False) == pytest.approx(0.455, abs=2e-3)

    def test_sufficient_is_below_exact(self, torus, small_random_graph):
        coupling = fraud_matrix()
        for graph in (torus, small_random_graph):
            assert convergence.max_epsilon_sufficient(graph, coupling) <= \
                convergence.max_epsilon_exact(graph, coupling) + 1e-9
            assert convergence.max_epsilon_sufficient(graph, coupling, False) <= \
                convergence.max_epsilon_exact(graph, coupling, False) + 1e-9

    def test_norm_bound_formula_star(self, torus):
        # For LinBP* the bound is 1 / min-norm(A).
        from repro.graphs import linalg
        expected = 1.0 / linalg.minimum_norm(torus.adjacency)
        assert convergence.sufficient_norm_bound_linbp_star(torus) == pytest.approx(
            expected)

    def test_simple_lemma23_bound_is_weaker(self, torus):
        assert convergence.simple_norm_bound_linbp(torus) <= \
            convergence.sufficient_norm_bound_linbp(torus) + 1e-12

    def test_edgeless_graph_bounds_are_infinite(self):
        graph = Graph.empty(5)
        assert convergence.sufficient_norm_bound_linbp(graph) == np.inf
        assert convergence.sufficient_norm_bound_linbp_star(graph) == np.inf
        assert convergence.max_epsilon_exact(graph, homophily_matrix()) == np.inf


class TestMooijKappen:
    def test_edge_adjacency_excludes_backtracking(self):
        # On a path 0-1-2 the directed-edge matrix has exactly two entries:
        # (1->2 receives from 0->1) and (1->0 receives from 2->1).
        graph = chain_graph(3)
        matrix = convergence.edge_adjacency_matrix(graph).toarray()
        assert matrix.sum() == 2

    def test_edge_adjacency_radius_close_to_adjacency_radius_minus_one(self):
        # Appendix G: empirically rho(A_edge) + 1 ~= rho(A) for real-ish graphs.
        graph = ring_graph(12)
        rho_edge = float(np.max(np.abs(np.linalg.eigvals(
            convergence.edge_adjacency_matrix(graph).toarray()))))
        assert rho_edge == pytest.approx(1.0, abs=1e-6)  # cycle: A_edge is a shift
        assert graph.spectral_radius() == pytest.approx(2.0, abs=1e-9)

    def test_constant_zero_for_uniform_potential(self):
        # A completely uniform coupling carries no information: c(H) = 0.
        coupling = CouplingMatrix.from_residual(np.zeros((3, 3)))
        assert convergence.mooij_kappen_constant(coupling) == pytest.approx(0.0)

    def test_constant_grows_with_epsilon(self):
        small = convergence.mooij_kappen_constant(fraud_matrix(epsilon=0.05))
        large = convergence.mooij_kappen_constant(fraud_matrix(epsilon=0.2))
        assert 0.0 < small < large <= 1.0

    def test_constant_is_one_for_zero_entries(self):
        # The Fig. 1c matrix has a zero entry, so at full scale c(H) = 1.
        assert convergence.mooij_kappen_constant(fraud_matrix(epsilon=1.0)) == 1.0

    def test_bound_value(self, torus):
        bound = convergence.mooij_kappen_bound(torus, fraud_matrix(epsilon=0.05))
        assert bound > 0.0


class TestAnalyze:
    def test_report_fields(self, torus):
        report = convergence.analyze(torus, fraud_matrix())
        assert report.spectral_radius_adjacency == pytest.approx(1 + np.sqrt(2), abs=1e-9)
        assert report.spectral_radius_coupling_unscaled == pytest.approx(0.629, abs=1e-3)
        assert report.exact_threshold_linbp < report.exact_threshold_linbp_star
        assert report.sufficient_threshold_linbp < report.exact_threshold_linbp
        assert report.mooij_kappen_threshold_bp is None

    def test_report_convergence_predicates(self, torus):
        report = convergence.analyze(torus, fraud_matrix())
        assert report.converges_linbp(0.3)
        assert not report.converges_linbp(0.6)
        assert report.converges_linbp_star(0.6)
        assert not report.converges_linbp_star(0.7)

    def test_report_with_mooij_kappen(self, torus):
        report = convergence.analyze(torus, fraud_matrix(epsilon=0.05),
                                     include_mooij_kappen=True)
        assert report.mooij_kappen_threshold_bp is not None
        assert report.mooij_kappen_threshold_bp > 0.0
