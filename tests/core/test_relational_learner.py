"""Tests for the wvRN relational-learner baseline and its relation to LinBP/SBP."""

from __future__ import annotations

import numpy as np
import pytest

from repro.beliefs import BeliefMatrix
from repro.coupling import general_heterophily, general_homophily
from repro.core import linbp, sbp, weighted_vote_relational_neighbor, wvrn
from repro.exceptions import ValidationError
from repro.graphs import Graph, chain_graph, ring_graph, star_graph


class TestWvrnMechanics:
    def test_alias(self):
        assert wvrn is weighted_vote_relational_neighbor

    def test_labeled_nodes_stay_clamped(self):
        graph = chain_graph(5)
        explicit = BeliefMatrix.from_labels({0: 0, 4: 1}, 5, 2, magnitude=0.4).residuals
        result = wvrn(graph, explicit)
        assert result.hard_labels()[0] == 0
        assert result.hard_labels()[4] == 1

    def test_homophily_propagation_on_chain(self):
        graph = chain_graph(6)
        explicit = BeliefMatrix.from_labels({0: 0, 5: 1}, 6, 2, magnitude=0.4).residuals
        labels = wvrn(graph, explicit).hard_labels()
        assert labels.tolist() == [0, 0, 0, 1, 1, 1]

    def test_star_graph_leaves_follow_center(self):
        graph = star_graph(5)
        explicit = BeliefMatrix.from_labels({0: 1}, 6, 2, magnitude=0.4).residuals
        labels = wvrn(graph, explicit).hard_labels()
        assert np.all(labels == 1)

    def test_unlabeled_component_gets_no_prediction(self):
        graph = Graph.from_edges([(0, 1)], num_nodes=4)
        explicit = BeliefMatrix.from_labels({0: 0}, 4, 2).residuals
        result = wvrn(graph, explicit)
        assert result.hard_labels()[2] == -1 and result.hard_labels()[3] == -1

    def test_beliefs_are_centered(self):
        graph = ring_graph(6)
        explicit = BeliefMatrix.from_labels({0: 0, 3: 1}, 6, 2).residuals
        result = wvrn(graph, explicit)
        assert np.allclose(result.beliefs.sum(axis=1), 0.0, atol=1e-9)

    def test_converges_and_reports_history(self):
        # Relaxation labelling diffuses slowly on a path graph, so allow a
        # generous iteration budget before asserting convergence.
        graph = chain_graph(8)
        explicit = BeliefMatrix.from_labels({0: 0, 7: 1}, 8, 2).residuals
        result = wvrn(graph, explicit, max_iterations=5000)
        assert result.converged
        assert result.residual_history[-1] < 1e-9
        assert result.residual_history == sorted(result.residual_history, reverse=True)

    def test_weighted_neighbors_count_more(self):
        graph = Graph.from_edges([(0, 1, 10.0), (1, 2, 1.0)])
        explicit = BeliefMatrix.from_labels({0: 0, 2: 1}, 3, 2, magnitude=0.4).residuals
        result = wvrn(graph, explicit)
        # Node 1 leans towards its heavily-weighted neighbour 0.
        assert result.hard_labels()[1] == 0

    def test_validation(self):
        graph = chain_graph(3)
        with pytest.raises(ValidationError):
            wvrn(graph, np.zeros((5, 2)))
        with pytest.raises(ValidationError):
            wvrn(graph, np.zeros(3))
        with pytest.raises(ValidationError):
            wvrn(graph, np.zeros((3, 2)), max_iterations=0)
        with pytest.raises(ValidationError):
            wvrn(graph, np.zeros((3, 2)), tolerance=0.0)
        bad = np.zeros((3, 2))
        bad[0] = [5.0, -5.0]  # implies a negative probability
        with pytest.raises(ValidationError):
            wvrn(graph, bad)


class TestWvrnAgainstCouplingAwareMethods:
    def test_agrees_with_linbp_under_homophily(self):
        rng = np.random.default_rng(2)
        from repro.graphs import random_graph
        graph = random_graph(50, 0.12, seed=2)
        labels = {int(node): int(rng.integers(0, 2))
                  for node in rng.choice(50, size=10, replace=False)}
        explicit = BeliefMatrix.from_labels(labels, 50, 2, magnitude=0.1).residuals
        coupling = general_homophily(2, strength=0.1,
                                     epsilon=0.3 / graph.spectral_radius() / 0.1)
        linbp_labels = linbp(graph, coupling, explicit).hard_labels()
        wvrn_labels = wvrn(graph, explicit).hard_labels()
        comparable = (linbp_labels >= 0) & (wvrn_labels >= 0)
        agreement = np.mean(linbp_labels[comparable] == wvrn_labels[comparable])
        assert agreement > 0.85

    def test_fails_under_heterophily_where_linbp_succeeds(self):
        """The paper's motivation for the coupling matrix: wvRN assumes homophily."""
        graph = ring_graph(20)  # even cycle: 2-colourable
        true_labels = np.arange(20) % 2
        explicit = BeliefMatrix.from_labels({0: 0, 7: 1}, 20, 2, magnitude=0.1).residuals
        coupling = general_heterophily(2, strength=0.1, epsilon=1.0)
        linbp_labels = linbp(graph, coupling, explicit).hard_labels()
        sbp_labels = sbp(graph, coupling, explicit).hard_labels()
        wvrn_labels = wvrn(graph, explicit).hard_labels()
        linbp_accuracy = np.mean(linbp_labels == true_labels)
        sbp_accuracy = np.mean(sbp_labels == true_labels)
        wvrn_accuracy = np.mean(wvrn_labels == true_labels)
        assert linbp_accuracy == 1.0
        assert sbp_accuracy == 1.0
        assert wvrn_accuracy < 0.8
