"""Tests for incremental LinBP maintenance (superposition + warm starts)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import IncrementalLinBP, LinBP, linbp, linbp_closed_form
from repro.coupling import synthetic_residual_matrix
from repro.exceptions import ValidationError
from repro.graphs import random_graph


@pytest.fixture
def workload():
    graph = random_graph(70, 0.08, seed=4)
    coupling = synthetic_residual_matrix(epsilon=0.3)
    rng = np.random.default_rng(8)
    explicit = np.zeros((70, 3))
    for node in rng.choice(70, size=8, replace=False):
        values = rng.uniform(-0.1, 0.1, size=2)
        explicit[node] = [values[0], values[1], -values.sum()]
    return graph, coupling, explicit


class TestLabelUpdates:
    def test_superposition_matches_recomputation(self, workload):
        graph, coupling, explicit = workload
        labeled = np.nonzero(np.any(explicit != 0.0, axis=1))[0]
        initial = explicit.copy()
        initial[labeled[::2]] = 0.0
        maintainer = IncrementalLinBP(graph, coupling, tolerance=1e-12)
        maintainer.run(initial)
        update = {int(node): explicit[node] for node in labeled[::2]}
        result = maintainer.add_explicit_beliefs(update)
        scratch = linbp(graph, coupling, explicit, max_iterations=300,
                        tolerance=1e-12)
        assert np.allclose(result.beliefs, scratch.beliefs, atol=1e-8)

    def test_matrix_form_update(self, workload):
        graph, coupling, explicit = workload
        maintainer = IncrementalLinBP(graph, coupling, tolerance=1e-12)
        maintainer.run(np.zeros_like(explicit))
        result = maintainer.add_explicit_beliefs(explicit)
        scratch = linbp_closed_form(graph, coupling, explicit)
        assert np.allclose(result.beliefs, scratch.beliefs, atol=1e-7)

    def test_changing_an_existing_label(self, workload):
        graph, coupling, explicit = workload
        labeled = np.nonzero(np.any(explicit != 0.0, axis=1))[0]
        maintainer = IncrementalLinBP(graph, coupling, tolerance=1e-12)
        maintainer.run(explicit)
        flipped = explicit.copy()
        flipped[labeled[0]] = explicit[labeled[0]][[1, 2, 0]]  # permute the row
        result = maintainer.add_explicit_beliefs({int(labeled[0]): flipped[labeled[0]]})
        scratch = linbp(graph, coupling, flipped, max_iterations=300, tolerance=1e-12)
        assert np.allclose(result.beliefs, scratch.beliefs, atol=1e-8)
        assert np.allclose(maintainer.explicit_beliefs, flipped)

    def test_empty_update_is_noop(self, workload):
        graph, coupling, explicit = workload
        maintainer = IncrementalLinBP(graph, coupling)
        before = maintainer.run(explicit)
        after = maintainer.add_explicit_beliefs({})
        assert np.allclose(before.beliefs, after.beliefs)
        assert after.extra["update_iterations"] == 0


class TestEdgeUpdates:
    def test_warm_start_matches_recomputation(self, workload):
        graph, coupling, explicit = workload
        rng = np.random.default_rng(3)
        new_edges = []
        while len(new_edges) < 6:
            source, target = rng.integers(0, graph.num_nodes, size=2)
            if source != target and not graph.has_edge(int(source), int(target)):
                new_edges.append((int(source), int(target)))
        maintainer = IncrementalLinBP(graph, coupling, tolerance=1e-12)
        maintainer.run(explicit)
        result = maintainer.add_edges(new_edges)
        scratch = linbp(graph.with_edges_added(new_edges), coupling, explicit,
                        max_iterations=300, tolerance=1e-12)
        assert np.allclose(result.beliefs, scratch.beliefs, atol=1e-8)
        assert maintainer.graph.num_edges == graph.num_edges + len(new_edges)

    def test_warm_start_needs_fewer_iterations_than_cold_start(self, workload):
        graph, coupling, explicit = workload
        maintainer = IncrementalLinBP(graph, coupling, tolerance=1e-10)
        maintainer.run(explicit)
        new_edge = None
        rng = np.random.default_rng(5)
        while new_edge is None:
            source, target = rng.integers(0, graph.num_nodes, size=2)
            if source != target and not graph.has_edge(int(source), int(target)):
                new_edge = (int(source), int(target))
        warm = maintainer.add_edges([new_edge])
        cold = LinBP(graph.with_edges_added([new_edge]), coupling,
                     tolerance=1e-10).run(explicit)
        assert warm.extra["update_iterations"] <= cold.iterations

    def test_empty_edge_update_is_noop(self, workload):
        graph, coupling, explicit = workload
        maintainer = IncrementalLinBP(graph, coupling)
        before = maintainer.run(explicit)
        after = maintainer.add_edges([])
        assert np.allclose(before.beliefs, after.beliefs)


class TestValidation:
    def test_requires_run_first(self, workload):
        graph, coupling, explicit = workload
        maintainer = IncrementalLinBP(graph, coupling)
        with pytest.raises(ValidationError):
            maintainer.add_explicit_beliefs({0: explicit[0]})
        with pytest.raises(ValidationError):
            maintainer.add_edges([(0, 1)])
        with pytest.raises(ValidationError):
            _ = maintainer.beliefs

    def test_shape_checks(self, workload):
        graph, coupling, explicit = workload
        maintainer = IncrementalLinBP(graph, coupling)
        with pytest.raises(ValidationError):
            maintainer.run(np.zeros((3, 3)))
        maintainer.run(explicit)
        with pytest.raises(ValidationError):
            maintainer.add_explicit_beliefs({0: np.zeros(7)})
        with pytest.raises(ValidationError):
            maintainer.add_explicit_beliefs(np.zeros((3, 3)))
