"""Tests for coupling-matrix estimation from partially labeled data."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import estimate_coupling, linbp
from repro.core.estimation import label_cooccurrence_counts
from repro.coupling import is_doubly_stochastic
from repro.exceptions import ValidationError
from repro.graphs import Graph, chain_graph


def _planted_graph(num_nodes=200, num_classes=3, seed=0, heterophily=False):
    """A planted-partition graph plus its ground-truth labels."""
    rng = np.random.default_rng(seed)
    labels = rng.integers(0, num_classes, size=num_nodes)
    edges = []
    for source in range(num_nodes):
        for target in range(source + 1, num_nodes):
            same = labels[source] == labels[target]
            if heterophily:
                probability = 0.002 if same else 0.03
            else:
                probability = 0.03 if same else 0.002
            if rng.random() < probability:
                edges.append((source, target))
    return Graph.from_edges(edges, num_nodes=num_nodes), labels


class TestCooccurrenceCounts:
    def test_counts_are_symmetric(self):
        graph, labels = _planted_graph(80)
        counts, observed = label_cooccurrence_counts(graph, labels, 3)
        assert np.allclose(counts, counts.T)
        assert observed > 0
        assert counts.sum() == pytest.approx(2 * observed)

    def test_mapping_and_array_forms_agree(self):
        graph, labels = _planted_graph(60)
        as_array, _ = label_cooccurrence_counts(graph, labels, 3)
        mapping = {int(node): int(label) for node, label in enumerate(labels)}
        as_mapping, _ = label_cooccurrence_counts(graph, mapping, 3)
        assert np.allclose(as_array, as_mapping)

    def test_unlabeled_endpoints_skipped(self):
        graph = chain_graph(4)
        counts, observed = label_cooccurrence_counts(graph, {0: 0, 3: 1}, 2)
        assert observed == 0
        assert counts.sum() == 0

    def test_weights_respected(self):
        graph = Graph.from_edges([(0, 1, 3.0)])
        counts, _ = label_cooccurrence_counts(graph, {0: 0, 1: 1}, 2)
        assert counts[0, 1] == pytest.approx(3.0)
        unweighted, _ = label_cooccurrence_counts(graph, {0: 0, 1: 1}, 2,
                                                  use_weights=False)
        assert unweighted[0, 1] == pytest.approx(1.0)

    def test_validation(self):
        graph = chain_graph(3)
        with pytest.raises(ValidationError):
            label_cooccurrence_counts(graph, {9: 0}, 2)
        with pytest.raises(ValidationError):
            label_cooccurrence_counts(graph, {0: 5}, 2)
        with pytest.raises(ValidationError):
            label_cooccurrence_counts(graph, np.zeros(7, dtype=int), 2)
        with pytest.raises(ValidationError):
            label_cooccurrence_counts(graph, {0: 0}, 1)


class TestEstimateCoupling:
    def test_estimate_is_valid_coupling(self):
        graph, labels = _planted_graph(150)
        estimate = estimate_coupling(graph, labels, 3)
        assert is_doubly_stochastic(estimate.coupling.stochastic, tol=1e-6)
        assert estimate.coupling.num_classes == 3
        assert estimate.num_observed_edges > 0

    def test_homophily_recovered(self):
        graph, labels = _planted_graph(250, seed=1)
        estimate = estimate_coupling(graph, labels, 3)
        assert estimate.coupling.is_homophily()

    def test_heterophily_recovered(self):
        graph, labels = _planted_graph(250, seed=2, heterophily=True)
        estimate = estimate_coupling(graph, labels, 3)
        residual = estimate.coupling.unscaled_residual
        assert np.all(np.diag(residual) < 0)

    def test_partial_labels_suffice(self):
        graph, labels = _planted_graph(300, seed=3)
        rng = np.random.default_rng(0)
        observed = {int(node): int(labels[node])
                    for node in rng.choice(300, size=120, replace=False)}
        estimate = estimate_coupling(graph, observed, 3)
        assert estimate.coupling.is_homophily()

    def test_estimated_coupling_is_usable_by_linbp(self):
        graph, labels = _planted_graph(150, seed=4)
        rng = np.random.default_rng(1)
        labeled_nodes = rng.choice(150, size=40, replace=False)
        observed = {int(node): int(labels[node]) for node in labeled_nodes}
        estimate = estimate_coupling(graph, observed, 3)
        epsilon = 0.5 / (estimate.coupling.spectral_radius(scaled=False)
                         * graph.spectral_radius())
        explicit = np.zeros((150, 3))
        for node, label in observed.items():
            explicit[node, :] = -0.05
            explicit[node, label] = 0.1
        result = linbp(graph, estimate.coupling.scaled(epsilon), explicit)
        evaluation = [node for node in range(150) if node not in observed]
        predicted = result.hard_labels()
        accuracy = np.mean([predicted[node] == labels[node] for node in evaluation
                            if predicted[node] >= 0])
        assert accuracy > 0.6  # far above the 1/3 chance level

    def test_smoothing_pulls_towards_uniform(self):
        graph, labels = _planted_graph(120, seed=5)
        sharp = estimate_coupling(graph, labels, 3, smoothing=0.01)
        smooth = estimate_coupling(graph, labels, 3, smoothing=1000.0)
        assert np.max(np.abs(smooth.coupling.unscaled_residual)) < \
            np.max(np.abs(sharp.coupling.unscaled_residual))

    def test_class_names_attached(self):
        graph, labels = _planted_graph(80, seed=6)
        estimate = estimate_coupling(graph, labels, 3, class_names=("a", "b", "c"))
        assert estimate.coupling.name_of(0) == "a"

    def test_no_evidence_without_smoothing_raises(self):
        graph = chain_graph(4)
        with pytest.raises(ValidationError):
            estimate_coupling(graph, {0: 0, 3: 1}, 2, smoothing=0.0)

    def test_no_evidence_with_smoothing_gives_uniform(self):
        graph = chain_graph(4)
        estimate = estimate_coupling(graph, {0: 0, 3: 1}, 2, smoothing=1.0)
        assert np.allclose(estimate.coupling.unscaled_residual, 0.0, atol=1e-9)

    def test_negative_smoothing_rejected(self):
        graph, labels = _planted_graph(50, seed=7)
        with pytest.raises(ValidationError):
            estimate_coupling(graph, labels, 3, smoothing=-1.0)
