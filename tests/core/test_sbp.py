"""Unit tests for SBP: single-pass semantics, Lemma 17, incremental updates."""

from __future__ import annotations

import numpy as np
import pytest

from repro.beliefs import BeliefMatrix, standardize
from repro.coupling import fraud_matrix, homophily_matrix
from repro.core import SBP, sbp
from repro.exceptions import ValidationError
from repro.graphs import Graph, chain_graph, modified_adjacency, sbp_example_graph


class TestSBPSemantics:
    def test_example_16_assignment(self):
        """Fig. 5a: b̂'_v1 = ζ(Ĥo² (2 ê_v2 + ê_v7))."""
        graph = sbp_example_graph()
        coupling = fraud_matrix()
        explicit = np.zeros((7, 3))
        explicit[1] = [0.2, -0.1, -0.1]   # v2
        explicit[6] = [-0.1, -0.1, 0.2]   # v7
        result = sbp(graph, coupling, explicit)
        unscaled = coupling.unscaled_residual
        expected = standardize(np.linalg.matrix_power(unscaled, 2)
                               @ (2.0 * explicit[1] + explicit[6]))
        assert np.allclose(result.standardized_beliefs()[0], expected, atol=1e-10)

    def test_example_20_assignment(self, torus, torus_explicit):
        """Example 20: b̂'_v4 = ζ(Ĥo³ (ê_v1 + ê_v3)) ≈ [−0.069, 1.258, −1.189]."""
        result = sbp(torus, fraud_matrix(), torus_explicit)
        assert np.allclose(result.standardized_beliefs()[3],
                           [-0.069214, 1.257884, -1.18867], atol=1e-5)

    def test_labeled_nodes_keep_their_beliefs(self, torus, torus_explicit):
        result = sbp(torus, fraud_matrix(), torus_explicit)
        assert np.allclose(result.beliefs[:3], torus_explicit[:3])

    def test_geodesic_numbers_reported(self, torus, torus_explicit):
        result = sbp(torus, fraud_matrix(), torus_explicit)
        assert result.extra["geodesic_numbers"].tolist() == [0, 0, 0, 3, 1, 1, 1, 2]

    def test_unreachable_nodes_stay_zero(self):
        graph = Graph.from_edges([(0, 1)], num_nodes=4)
        explicit = BeliefMatrix.from_labels({0: 0}, 4, 2).residuals
        result = sbp(graph, homophily_matrix(), explicit)
        assert np.allclose(result.beliefs[2:], 0.0)
        assert result.extra["geodesic_numbers"][2] == -1

    def test_no_labels_all_zero(self):
        graph = chain_graph(4)
        result = sbp(graph, homophily_matrix(), np.zeros((4, 2)))
        assert np.allclose(result.beliefs, 0.0)

    def test_epsilon_scaling_only_rescales(self, torus, torus_explicit):
        """SBP's standardized assignment is independent of ε_H (Section 6.2)."""
        small = sbp(torus, fraud_matrix(epsilon=0.01), torus_explicit)
        large = sbp(torus, fraud_matrix(epsilon=1.0), torus_explicit)
        assert np.allclose(small.standardized_beliefs(), large.standardized_beliefs(),
                           atol=1e-9)
        # Raw beliefs scale as epsilon^geodesic.
        assert np.allclose(small.beliefs[3], large.beliefs[3] * 0.01 ** 3, atol=1e-12)

    def test_weighted_paths_multiply(self):
        graph = Graph.from_edges([(0, 1, 2.0), (1, 2, 3.0)])
        coupling = homophily_matrix()
        explicit = BeliefMatrix.from_labels({0: 0}, 3, 2, magnitude=0.1).residuals
        result = sbp(graph, coupling, explicit)
        residual = coupling.residual
        expected = 6.0 * (explicit[0] @ residual @ residual)
        assert np.allclose(result.beliefs[2], expected, atol=1e-12)


class TestLemma17:
    def test_sbp_equals_linbp_on_modified_adjacency(self, small_random_workload):
        """SBP over A equals LinBP* over A*ᵀ (Lemma 17)."""
        graph, coupling, explicit = small_random_workload
        sbp_result = sbp(graph, coupling, explicit)
        labeled = np.nonzero(np.any(explicit != 0.0, axis=1))[0]
        dag_transposed = modified_adjacency(graph, labeled.tolist()).T.tocsr()
        # LinBP over the (directed) A*ᵀ: run the update manually until fixed point
        # (A* is acyclic, so n iterations suffice and the echo term is irrelevant
        # in the epsilon -> 0 limit the lemma describes).
        residual = coupling.residual
        beliefs = np.zeros_like(explicit)
        for _ in range(graph.num_nodes + 1):
            beliefs = explicit + dag_transposed @ beliefs @ residual
        assert np.allclose(sbp_result.beliefs, beliefs, atol=1e-10)


class TestIncrementalBeliefs:
    def test_matches_recomputation(self, small_random_workload):
        graph, coupling, explicit = small_random_workload
        labeled = np.nonzero(np.any(explicit != 0.0, axis=1))[0]
        keep, add = labeled[: len(labeled) // 2], labeled[len(labeled) // 2:]
        initial = explicit.copy()
        initial[add] = 0.0
        runner = SBP(graph, coupling)
        runner.run(initial)
        update = {int(node): explicit[node] for node in add}
        incremental = runner.add_explicit_beliefs(update)
        scratch = sbp(graph, coupling, explicit)
        assert np.allclose(incremental.beliefs, scratch.beliefs, atol=1e-10)
        assert np.array_equal(incremental.extra["geodesic_numbers"],
                              scratch.extra["geodesic_numbers"])

    def test_accepts_matrix_form(self, small_random_workload):
        graph, coupling, explicit = small_random_workload
        runner = SBP(graph, coupling)
        runner.run(np.zeros_like(explicit))
        result = runner.add_explicit_beliefs(explicit)
        scratch = sbp(graph, coupling, explicit)
        assert np.allclose(result.beliefs, scratch.beliefs, atol=1e-10)

    def test_empty_update_is_noop(self, small_random_workload):
        graph, coupling, explicit = small_random_workload
        runner = SBP(graph, coupling)
        before = runner.run(explicit)
        after = runner.add_explicit_beliefs({})
        assert np.allclose(before.beliefs, after.beliefs)
        assert after.extra["nodes_updated"] == 0

    def test_changing_an_existing_label(self):
        graph = chain_graph(4)
        coupling = homophily_matrix(epsilon=0.3)
        explicit = BeliefMatrix.from_labels({0: 0}, 4, 2).residuals
        runner = SBP(graph, coupling)
        runner.run(explicit)
        flipped = BeliefMatrix.from_labels({0: 1}, 4, 2).residuals
        result = runner.add_explicit_beliefs({0: flipped[0]})
        scratch = sbp(graph, coupling, flipped)
        assert np.allclose(result.beliefs, scratch.beliefs, atol=1e-12)

    def test_requires_run_first(self, small_random_workload):
        graph, coupling, explicit = small_random_workload
        runner = SBP(graph, coupling)
        with pytest.raises(ValidationError):
            runner.add_explicit_beliefs({0: explicit[0]})
        with pytest.raises(ValidationError):
            _ = runner.beliefs

    def test_bad_vector_length_rejected(self, small_random_workload):
        graph, coupling, explicit = small_random_workload
        runner = SBP(graph, coupling)
        runner.run(explicit)
        with pytest.raises(ValidationError):
            runner.add_explicit_beliefs({0: np.zeros(5)})

    def test_out_of_range_node_rejected_before_any_mutation(self, small_random_workload):
        """A bad node in a mapping must not corrupt state (negative indices
        would silently write the wrong belief row, overflowing ones would
        raise only after earlier entries were applied)."""
        graph, coupling, explicit = small_random_workload
        runner = SBP(graph, coupling)
        runner.run(explicit)
        before_beliefs = runner.beliefs
        before_geodesic = runner.geodesic_numbers
        vector = explicit[np.nonzero(np.any(explicit != 0.0, axis=1))[0][0]]
        for bad_node in (-1, graph.num_nodes, graph.num_nodes + 5):
            with pytest.raises(ValidationError):
                runner.add_explicit_beliefs({0: vector, bad_node: vector})
            assert np.array_equal(runner.beliefs, before_beliefs)
            assert np.array_equal(runner.geodesic_numbers, before_geodesic)

    def test_reaches_previously_unreachable_nodes(self):
        graph = Graph.from_edges([(0, 1), (2, 3)], num_nodes=4)
        coupling = homophily_matrix(epsilon=0.3)
        explicit = BeliefMatrix.from_labels({0: 0}, 4, 2).residuals
        runner = SBP(graph, coupling)
        runner.run(explicit)
        assert runner.geodesic_numbers[2] == -1
        new_label = BeliefMatrix.from_labels({2: 1}, 4, 2).residuals
        result = runner.add_explicit_beliefs({2: new_label[2]})
        assert result.extra["geodesic_numbers"][3] == 1
        assert result.hard_labels()[3] == 1


class TestIncrementalEdges:
    def test_matches_recomputation(self, small_random_workload):
        graph, coupling, explicit = small_random_workload
        rng = np.random.default_rng(5)
        candidates = []
        while len(candidates) < 5:
            source, target = rng.integers(0, graph.num_nodes, size=2)
            if source != target and not graph.has_edge(int(source), int(target)):
                candidates.append((int(source), int(target)))
        runner = SBP(graph, coupling)
        runner.run(explicit)
        incremental = runner.add_edges(candidates)
        extended = graph.with_edges_added(candidates)
        scratch = sbp(extended, coupling, explicit)
        assert np.allclose(incremental.beliefs, scratch.beliefs, atol=1e-10)
        assert np.array_equal(incremental.extra["geodesic_numbers"],
                              scratch.extra["geodesic_numbers"])

    def test_edge_connecting_unreachable_component(self):
        graph = Graph.from_edges([(0, 1), (2, 3)], num_nodes=4)
        coupling = homophily_matrix(epsilon=0.3)
        explicit = BeliefMatrix.from_labels({0: 0}, 4, 2).residuals
        runner = SBP(graph, coupling)
        runner.run(explicit)
        result = runner.add_edges([(1, 2)])
        scratch = sbp(graph.with_edges_added([(1, 2)]), coupling, explicit)
        assert np.allclose(result.beliefs, scratch.beliefs, atol=1e-12)
        assert result.extra["geodesic_numbers"][3] == 3

    def test_edge_between_equal_levels_changes_nothing(self):
        # Both endpoints at geodesic number 1: no geodesic path uses the edge.
        graph = Graph.from_edges([(0, 1), (0, 2)])
        coupling = homophily_matrix(epsilon=0.3)
        explicit = BeliefMatrix.from_labels({0: 0}, 3, 2).residuals
        runner = SBP(graph, coupling)
        before = runner.run(explicit)
        after = runner.add_edges([(1, 2)])
        assert np.allclose(before.beliefs, after.beliefs)

    def test_empty_edge_list_is_noop(self, small_random_workload):
        graph, coupling, explicit = small_random_workload
        runner = SBP(graph, coupling)
        before = runner.run(explicit)
        after = runner.add_edges([])
        assert np.allclose(before.beliefs, after.beliefs)

    def test_weighted_edge_addition(self):
        graph = Graph.from_edges([(0, 1)], num_nodes=3)
        coupling = homophily_matrix(epsilon=0.3)
        explicit = BeliefMatrix.from_labels({0: 0}, 3, 2).residuals
        runner = SBP(graph, coupling)
        runner.run(explicit)
        result = runner.add_edges([(1, 2, 2.5)])
        scratch = sbp(graph.with_edges_added([(1, 2, 2.5)]), coupling, explicit)
        assert np.allclose(result.beliefs, scratch.beliefs, atol=1e-12)


class TestSBPValidation:
    def test_shape_checks(self, torus):
        runner = SBP(torus, fraud_matrix())
        with pytest.raises(ValidationError):
            runner.run(np.zeros((8, 2)))
        with pytest.raises(ValidationError):
            runner.run(np.zeros((5, 3)))
