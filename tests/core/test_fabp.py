"""Unit tests for the binary (k = 2) linearization of Appendix E."""

from __future__ import annotations

import numpy as np
import pytest
from repro.core import fabp, linbp_closed_form
from repro.core.fabp import binary_coupling, fabp_closed_form
from repro.exceptions import ValidationError
from repro.graphs import chain_graph, random_graph, ring_graph


def _scalar_explicit(labels, num_nodes, magnitude=0.1):
    """Scalar beliefs: +magnitude for class 0, −magnitude for class 1."""
    scalars = np.zeros(num_nodes)
    for node, label in labels.items():
        scalars[node] = magnitude if label == 0 else -magnitude
    return scalars


class TestBinaryCoupling:
    def test_structure(self):
        coupling = binary_coupling(0.1)
        assert coupling.num_classes == 2
        assert np.allclose(coupling.residual, [[0.1, -0.1], [-0.1, 0.1]])

    def test_heterophily_sign(self):
        coupling = binary_coupling(-0.2)
        assert coupling.residual[0, 0] == pytest.approx(-0.2)

    def test_zero_rejected(self):
        with pytest.raises(ValidationError):
            binary_coupling(0.0)


class TestFabpAgainstLinBP:
    """The k = 2 instance of LinBP must coincide with the scalar closed form."""

    @pytest.mark.parametrize("graph_factory", [
        lambda: chain_graph(6),
        lambda: ring_graph(7),
        lambda: random_graph(25, 0.15, seed=3),
    ])
    def test_linbp_variant_matches_multiclass_solver(self, graph_factory):
        graph = graph_factory()
        h = 0.08
        labels = {0: 0, graph.num_nodes - 1: 1}
        scalars = _scalar_explicit(labels, graph.num_nodes)
        explicit = np.column_stack([scalars, -scalars])
        scalar_result = fabp_closed_form(graph, h, scalars, variant="linbp")
        matrix_result = linbp_closed_form(graph, binary_coupling(h), explicit)
        assert np.allclose(scalar_result, matrix_result.beliefs[:, 0], atol=1e-10)
        assert np.allclose(-scalar_result, matrix_result.beliefs[:, 1], atol=1e-10)

    def test_exact_variant_close_to_linbp_for_small_h(self):
        graph = random_graph(25, 0.15, seed=4)
        scalars = _scalar_explicit({0: 0, 5: 1}, graph.num_nodes)
        small_h = 0.01
        exact = fabp_closed_form(graph, small_h, scalars, variant="exact")
        linearized = fabp_closed_form(graph, small_h, scalars, variant="linbp")
        assert np.allclose(exact, linearized, atol=1e-4)

    def test_exact_variant_differs_for_large_h(self):
        graph = chain_graph(5)
        scalars = _scalar_explicit({0: 0}, 5)
        exact = fabp_closed_form(graph, 0.3, scalars, variant="exact")
        linearized = fabp_closed_form(graph, 0.3, scalars, variant="linbp")
        assert not np.allclose(exact, linearized, atol=1e-6)


class TestFabpResult:
    def test_result_container(self):
        graph = chain_graph(4)
        scalars = _scalar_explicit({0: 0, 3: 1}, 4)
        result = fabp(graph, 0.1, scalars)
        assert result.beliefs.shape == (4, 2)
        assert result.hard_labels()[0] == 0 and result.hard_labels()[3] == 1
        assert np.allclose(result.beliefs[:, 0], -result.beliefs[:, 1])

    def test_homophily_propagation(self):
        graph = chain_graph(6)
        scalars = _scalar_explicit({0: 0, 5: 1}, 6)
        labels = fabp(graph, 0.1, scalars).hard_labels()
        assert labels.tolist() == [0, 0, 0, 1, 1, 1]

    def test_heterophily_propagation(self):
        graph = chain_graph(5)
        scalars = _scalar_explicit({0: 0}, 5)
        labels = fabp(graph, -0.2, scalars).hard_labels()
        assert labels.tolist() == [0, 1, 0, 1, 0]

    def test_exact_variant_method_name(self):
        graph = chain_graph(3)
        result = fabp(graph, 0.1, _scalar_explicit({0: 0}, 3), variant="exact")
        assert result.method == "FABP"


class TestFabpValidation:
    def test_shape_check(self):
        with pytest.raises(ValidationError):
            fabp_closed_form(chain_graph(3), 0.1, np.zeros(5))

    def test_exact_variant_requires_small_h(self):
        with pytest.raises(ValidationError):
            fabp_closed_form(chain_graph(3), 0.6, np.zeros(3), variant="exact")

    def test_unknown_variant(self):
        with pytest.raises(ValidationError):
            fabp_closed_form(chain_graph(3), 0.1, np.zeros(3), variant="bogus")
