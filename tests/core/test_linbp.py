"""Unit tests for LinBP / LinBP*: iterative, closed form, convergence behaviour."""

from __future__ import annotations

import numpy as np
import pytest

from repro.beliefs import BeliefMatrix
from repro.coupling import CouplingMatrix, fraud_matrix, homophily_matrix
from repro.core import LinBP, linbp, linbp_closed_form, linbp_star
from repro.exceptions import NotConvergentParametersError, ValidationError
from repro.graphs import Graph, star_graph


class TestLinBPBasics:
    def test_iterative_matches_closed_form(self, torus, fraud_coupling, torus_explicit):
        iterative = linbp(torus, fraud_coupling, torus_explicit, max_iterations=500)
        closed = linbp_closed_form(torus, fraud_coupling, torus_explicit)
        assert iterative.converged
        assert np.allclose(iterative.beliefs, closed.beliefs, atol=1e-8)

    def test_star_variant_matches_its_closed_form(self, torus, fraud_coupling,
                                                  torus_explicit):
        iterative = linbp_star(torus, fraud_coupling, torus_explicit,
                               max_iterations=500)
        closed = linbp_closed_form(torus, fraud_coupling, torus_explicit,
                                   echo_cancellation=False)
        assert np.allclose(iterative.beliefs, closed.beliefs, atol=1e-8)

    def test_star_differs_from_full_linbp(self, torus, fraud_coupling, torus_explicit):
        full = linbp(torus, fraud_coupling, torus_explicit, max_iterations=500)
        star = linbp_star(torus, fraud_coupling, torus_explicit, max_iterations=500)
        assert not np.allclose(full.beliefs, star.beliefs, atol=1e-12)

    def test_labeled_rows_dominated_by_explicit_beliefs(self, binary_chain_workload):
        graph, coupling, explicit = binary_chain_workload
        result = linbp(graph, coupling, explicit)
        labels = result.hard_labels()
        assert labels[0] == 0 and labels[5] == 1

    def test_homophily_propagates_labels_along_chain(self, binary_chain_workload):
        graph, coupling, explicit = binary_chain_workload
        labels = linbp(graph, coupling, explicit).hard_labels()
        # Nodes near the class-0 end get class 0, nodes near the other end class 1.
        assert labels[1] == 0 and labels[2] == 0
        assert labels[3] == 1 and labels[4] == 1

    def test_heterophily_alternates_on_a_star(self):
        graph = star_graph(4)
        coupling = CouplingMatrix.from_residual(
            np.array([[-0.1, 0.1], [0.1, -0.1]]), epsilon=0.5)
        explicit = BeliefMatrix.from_labels({0: 0}, num_nodes=5, num_classes=2)
        labels = linbp(graph, coupling, explicit.residuals).hard_labels()
        assert labels[0] == 0
        assert all(labels[leaf] == 1 for leaf in range(1, 5))

    def test_fixed_iteration_budget(self, torus, fraud_coupling, torus_explicit):
        result = linbp(torus, fraud_coupling, torus_explicit, num_iterations=3)
        assert result.iterations == 3
        assert len(result.residual_history) == 3

    def test_zero_explicit_beliefs_give_zero_result(self, torus, fraud_coupling):
        result = linbp(torus, fraud_coupling, np.zeros((8, 3)))
        assert np.allclose(result.beliefs, 0.0)

    def test_initial_beliefs_do_not_change_fixed_point(self, torus, fraud_coupling,
                                                       torus_explicit):
        runner = LinBP(torus, fraud_coupling)
        from_zero = runner.run(torus_explicit)
        rng = np.random.default_rng(0)
        from_random = runner.run(torus_explicit,
                                 initial_beliefs=rng.standard_normal((8, 3)) * 0.01)
        assert np.allclose(from_zero.beliefs, from_random.beliefs, atol=1e-8)


class TestLinBPScalingLemmas:
    def test_lemma_12_scaling_explicit_beliefs(self, torus, fraud_coupling,
                                               torus_explicit):
        """Scaling Ê by λ scales B̂ by λ (Lemma 12)."""
        base = linbp_closed_form(torus, fraud_coupling, torus_explicit)
        scaled = linbp_closed_form(torus, fraud_coupling, 3.5 * torus_explicit)
        assert np.allclose(scaled.beliefs, 3.5 * base.beliefs, atol=1e-10)

    def test_corollary_13_standardized_assignment_unchanged(self, torus,
                                                            fraud_coupling,
                                                            torus_explicit):
        base = linbp_closed_form(torus, fraud_coupling, torus_explicit)
        scaled = linbp_closed_form(torus, fraud_coupling, 10.0 * torus_explicit)
        assert np.allclose(base.standardized_beliefs(), scaled.standardized_beliefs(),
                           atol=1e-10)
        assert base.top_beliefs() == scaled.top_beliefs()


class TestWeightedGraphs:
    def test_weighted_edges_change_result(self):
        unweighted = Graph.from_edges([(0, 1), (1, 2)])
        weighted = Graph.from_edges([(0, 1, 2.0), (1, 2, 0.5)])
        coupling = homophily_matrix(epsilon=0.2)
        explicit = BeliefMatrix.from_labels({0: 0, 2: 1}, 3, 2).residuals
        result_u = linbp_closed_form(unweighted, coupling, explicit)
        result_w = linbp_closed_form(weighted, coupling, explicit)
        assert not np.allclose(result_u.beliefs, result_w.beliefs)
        # The heavier edge pulls node 1 towards class 0.
        assert result_w.hard_labels()[1] == 0

    def test_doubling_weights_equals_halving_nothing(self):
        """Weighted closed form is consistent with Eq. 4 on the scaled matrix."""
        graph = Graph.from_edges([(0, 1, 2.0), (1, 2, 1.0)])
        coupling = homophily_matrix(epsilon=0.1)
        explicit = BeliefMatrix.from_labels({0: 0}, 3, 2).residuals
        result = linbp_closed_form(graph, coupling, explicit)
        # Manually verify the fixed point: B = E + A B H - D B H^2.
        adjacency = graph.adjacency.toarray()
        degree = np.diag(graph.degree_vector())
        beliefs = result.beliefs
        residual = coupling.residual
        reconstructed = explicit + adjacency @ beliefs @ residual \
            - degree @ beliefs @ (residual @ residual)
        assert np.allclose(beliefs, reconstructed, atol=1e-10)


class TestConvergenceBehaviour:
    def test_divergence_above_threshold(self, torus, torus_explicit):
        coupling = fraud_matrix(epsilon=0.7)  # well above the 0.488 threshold
        result = linbp(torus, coupling, torus_explicit, max_iterations=300)
        assert not result.converged
        assert result.residual_history[-1] > result.residual_history[0]

    def test_convergence_below_threshold(self, torus, torus_explicit):
        coupling = fraud_matrix(epsilon=0.4)
        result = linbp(torus, coupling, torus_explicit, max_iterations=2000)
        assert result.converged

    def test_require_convergence_raises(self, torus, torus_explicit):
        coupling = fraud_matrix(epsilon=0.55)
        with pytest.raises(NotConvergentParametersError):
            linbp(torus, coupling, torus_explicit, require_convergence=True)

    def test_spectral_radius_accessor(self, torus):
        runner_ok = LinBP(torus, fraud_matrix(epsilon=0.4))
        runner_bad = LinBP(torus, fraud_matrix(epsilon=0.55))
        assert runner_ok.spectral_radius() < 1.0 < runner_bad.spectral_radius()


class TestValidation:
    def test_wrong_shape_rejected(self, torus, fraud_coupling):
        with pytest.raises(ValidationError):
            linbp(torus, fraud_coupling, np.zeros((5, 3)))
        with pytest.raises(ValidationError):
            linbp(torus, fraud_coupling, np.zeros((8, 2)))
        with pytest.raises(ValidationError):
            linbp(torus, fraud_coupling, np.zeros(8))

    def test_bad_parameters_rejected(self, torus, fraud_coupling):
        with pytest.raises(ValidationError):
            LinBP(torus, fraud_coupling, max_iterations=0)
        with pytest.raises(ValidationError):
            LinBP(torus, fraud_coupling, tolerance=0.0)

    def test_bad_initial_beliefs_rejected(self, torus, fraud_coupling, torus_explicit):
        runner = LinBP(torus, fraud_coupling)
        with pytest.raises(ValidationError):
            runner.run(torus_explicit, initial_beliefs=np.zeros((3, 3)))
