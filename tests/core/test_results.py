"""Unit tests for the shared PropagationResult container."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import PropagationResult


class TestPropagationResult:
    def test_basic_views(self):
        beliefs = np.array([[0.2, -0.1, -0.1], [0.0, 0.0, 0.0]])
        result = PropagationResult(beliefs=beliefs, method="LinBP", iterations=7,
                                   converged=True, residual_history=[0.5, 0.01])
        assert result.num_nodes == 2
        assert result.num_classes == 3
        assert result.final_residual() == pytest.approx(0.01)
        assert result.hard_labels().tolist() == [0, -1]
        assert result.top_beliefs() == [{0}, set()]

    def test_standardized_beliefs(self):
        result = PropagationResult(beliefs=np.array([[1.0, 0.0]]), method="SBP")
        assert np.allclose(result.standardized_beliefs(), [[1.0, -1.0]])

    def test_final_residual_none_for_closed_form(self):
        result = PropagationResult(beliefs=np.zeros((1, 2)), method="LinBP (closed form)")
        assert result.final_residual() is None

    def test_summary_mentions_method_and_status(self):
        converged = PropagationResult(beliefs=np.zeros((3, 2)), method="LinBP",
                                      iterations=4, converged=True,
                                      residual_history=[0.1])
        diverged = PropagationResult(beliefs=np.zeros((3, 2)), method="LinBP",
                                     iterations=4, converged=False)
        assert "LinBP" in converged.summary()
        assert "NOT converged" in diverged.summary()
        assert "converged" in converged.summary()

    def test_belief_matrix_roundtrip(self):
        beliefs = np.array([[0.3, -0.3]])
        result = PropagationResult(beliefs=beliefs, method="BP")
        assert np.allclose(result.belief_matrix().residuals, beliefs)

    def test_list_input_converted_to_array(self):
        result = PropagationResult(beliefs=[[0.1, -0.1]], method="BP")
        assert isinstance(result.beliefs, np.ndarray)
