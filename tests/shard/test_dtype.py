"""Dtype support in the shard subsystem: typed blocks, plans, pool buffers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.coupling import synthetic_residual_matrix
from repro.engine import clear_plan_cache, get_plan, run_batch
from repro.exceptions import UnknownBackendError
from repro.graphs import random_graph
from repro.shard import (
    ShardWorkerPool,
    get_sharded_plan,
    partition_graph,
    run_sharded_batch,
)


@pytest.fixture(autouse=True)
def fresh_cache():
    clear_plan_cache()
    yield
    clear_plan_cache()


@pytest.fixture(scope="module")
def workload():
    graph = random_graph(120, 0.06, seed=8)
    coupling = synthetic_residual_matrix(epsilon=0.04)
    rng = np.random.default_rng(1)
    explicits = []
    for _ in range(3):
        explicit = np.zeros((120, 3))
        labeled = rng.choice(120, 10, replace=False)
        values = rng.uniform(-0.1, 0.1, (10, 2))
        explicit[labeled, 0] = values[:, 0]
        explicit[labeled, 1] = values[:, 1]
        explicit[labeled, 2] = -values.sum(axis=1)
        explicits.append(explicit)
    return graph, coupling, explicits


class TestShardBlockAstype:
    def test_astype_is_identity_on_matching_dtype(self, workload):
        graph, _, _ = workload
        partition = partition_graph(graph, 3)
        block = partition.blocks[0]
        assert block.astype(np.float64) is block

    def test_astype_shares_index_arrays(self, workload):
        graph, _, _ = workload
        partition = partition_graph(graph, 3)
        block = partition.blocks[0]
        narrow = block.astype(np.float32)
        assert narrow.adjacency.dtype == np.float32
        # Only the values are re-typed; the CSR structure is shared.
        assert np.shares_memory(narrow.adjacency.indptr,
                                block.adjacency.indptr)
        assert np.shares_memory(narrow.adjacency.indices,
                                block.adjacency.indices)
        assert narrow.degrees.dtype == np.float32
        assert np.allclose(narrow.adjacency.toarray(),
                           block.adjacency.toarray(), atol=1e-6)


class TestShardedPlanDtype:
    def test_plans_cached_per_dtype(self, workload):
        graph, coupling, _ = workload
        partition = partition_graph(graph, 3)
        plan64 = get_sharded_plan(partition, coupling)
        plan32 = get_sharded_plan(partition, coupling, dtype=np.float32)
        assert plan64 is get_sharded_plan(partition, coupling,
                                          dtype="float64")
        assert plan32 is not plan64
        assert plan32.dtype == np.float32

    def test_unsupported_dtype_rejected(self, workload):
        graph, coupling, _ = workload
        partition = partition_graph(graph, 3)
        with pytest.raises(UnknownBackendError):
            get_sharded_plan(partition, coupling, dtype=np.int32)

    def test_sequential_float32_matches_batch_float32(self, workload):
        graph, coupling, explicits = workload
        partition = partition_graph(graph, 3)
        plan = get_sharded_plan(partition, coupling, dtype=np.float32)
        sharded = run_sharded_batch(plan, explicits)
        reference = run_batch(get_plan(graph, coupling, dtype=np.float32),
                              explicits)
        for shard_result, batch_result in zip(sharded, reference):
            assert shard_result.beliefs.dtype == np.float32
            assert shard_result.extra["dtype"] == "float32"
            assert np.abs(shard_result.beliefs.astype(np.float64)
                          - batch_result.beliefs.astype(np.float64)
                          ).max() < 1e-5


class TestPoolDtype:
    def test_pool_matches_sequential_executor_in_both_dtypes(self, workload):
        graph, coupling, explicits = workload
        partition = partition_graph(graph, 3)
        with ShardWorkerPool(partition) as pool:
            for dtype in (np.float64, np.float32):
                plan = get_sharded_plan(partition, coupling, dtype=dtype)
                pooled = run_sharded_batch(plan, explicits, executor=pool)
                local = run_sharded_batch(plan, explicits)
                for a, b in zip(pooled, local):
                    assert a.beliefs.dtype == dtype
                    # Same kernels over the same shared-memory layout:
                    # the pool must be bit-identical to in-process.
                    assert np.array_equal(a.beliefs, b.beliefs)
                    assert a.iterations == b.iterations

    def test_pool_switches_dtype_across_batches(self, workload):
        """One pool serves float64 and float32 plans back-to-back."""
        graph, coupling, explicits = workload
        partition = partition_graph(graph, 3)
        plan64 = get_sharded_plan(partition, coupling)
        plan32 = get_sharded_plan(partition, coupling, dtype=np.float32)
        with ShardWorkerPool(partition) as pool:
            first = run_sharded_batch(plan64, explicits, executor=pool)
            narrow = run_sharded_batch(plan32, explicits, executor=pool)
            second = run_sharded_batch(plan64, explicits, executor=pool)
        assert first[0].beliefs.dtype == np.float64
        assert narrow[0].beliefs.dtype == np.float32
        # Returning to float64 after a float32 interlude reproduces the
        # original run exactly - no residue from the narrower views.
        for a, b in zip(first, second):
            assert np.array_equal(a.beliefs, b.beliefs)
        for a, b in zip(first, narrow):
            assert np.abs(a.beliefs
                          - b.beliefs.astype(np.float64)).max() < 1e-5
