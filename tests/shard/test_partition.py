"""Tests for the graph partitioner: blocks, halo maps, translation, stats."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.graphs import Graph, chain_graph, grid_graph, random_graph, star_graph
from repro.shard import (
    bfs_assignment,
    hash_assignment,
    partition_from_assignment,
    partition_graph,
)


class TestAssignments:
    def test_every_node_assigned_exactly_once(self):
        graph = random_graph(60, 0.1, seed=4)
        for method in ("bfs", "hash"):
            partition = partition_graph(graph, 4, method=method)
            covered = np.concatenate([block.nodes
                                      for block in partition.blocks])
            assert np.array_equal(np.sort(covered), np.arange(60))
            for block in partition.blocks:
                assert (partition.assignment[block.nodes]
                        == block.shard_id).all()

    def test_bfs_balance_within_one_capacity(self):
        graph = grid_graph(12, 12)
        partition = partition_graph(graph, 4, method="bfs")
        sizes = [block.num_nodes for block in partition.blocks]
        assert sum(sizes) == 144
        assert max(sizes) <= -(-144 // 4)  # no shard above ceil(n/p)

    def test_bfs_cuts_fewer_edges_than_hash(self):
        graph = grid_graph(16, 16)  # strong locality -> BFS must win
        bfs = partition_graph(graph, 4, method="bfs").stats()
        hashed = partition_graph(graph, 4, method="hash").stats()
        assert bfs.cut_edges < hashed.cut_edges

    def test_hash_assignment_is_deterministic_and_spread(self):
        first = hash_assignment(1000, 7)
        second = hash_assignment(1000, 7)
        assert np.array_equal(first, second)
        counts = np.bincount(first, minlength=7)
        assert counts.min() > 0

    def test_bfs_handles_disconnected_components(self):
        # two components; every node still lands in exactly one shard
        graph = Graph.from_edges([(0, 1), (1, 2), (4, 5), (5, 6)],
                                 num_nodes=8)
        assignment = bfs_assignment(graph, 3)
        assert assignment.shape == (8,)
        assert assignment.min() >= 0 and assignment.max() < 3

    def test_more_shards_than_nodes(self):
        graph = chain_graph(3)
        partition = partition_graph(graph, 5)
        assert partition.num_shards == 5
        sizes = [block.num_nodes for block in partition.blocks]
        assert sum(sizes) == 3
        # empty shards exist and are harmless
        assert 0 in sizes


class TestBlocks:
    def test_rows_are_complete_and_columns_translated(self):
        graph = random_graph(40, 0.15, seed=9)
        partition = partition_graph(graph, 3)
        dense = graph.adjacency.toarray()
        for block in partition.blocks:
            local = block.adjacency.toarray()
            for local_row, node in enumerate(block.nodes):
                # reconstruct the global row from the local one
                reconstructed = np.zeros(40)
                reconstructed[block.column_nodes] = local[local_row]
                assert np.array_equal(reconstructed, dense[node])

    def test_degrees_match_global_degrees(self):
        graph = random_graph(30, 0.2, seed=2, weighted=True)
        partition = partition_graph(graph, 4)
        global_degrees = graph.degree_vector()
        for block in partition.blocks:
            assert np.allclose(block.degrees, global_degrees[block.nodes])

    def test_halo_nodes_are_owned_elsewhere(self):
        graph = random_graph(50, 0.1, seed=3)
        partition = partition_graph(graph, 4)
        for block in partition.blocks:
            assert not np.intersect1d(block.nodes, block.halo_nodes).size
            assert (partition.assignment[block.halo_nodes]
                    == block.halo_owners).all()
            assert (block.halo_owners != block.shard_id).all()

    def test_every_edge_internal_once_or_cut_twice(self):
        graph = random_graph(45, 0.12, seed=6)
        partition = partition_graph(graph, 3)
        internal = sum(block.num_internal_entries
                       for block in partition.blocks)
        cut = sum(block.num_cut_entries for block in partition.blocks)
        # internal entries cover both directions of internal edges; cut
        # entries appear once per endpoint shard.
        assert internal + cut == graph.num_directed_edges
        assert cut % 2 == 0
        stats = partition.stats()
        assert stats.cut_edges == cut // 2
        assert internal // 2 + stats.cut_edges == graph.num_edges


class TestTranslation:
    def test_round_trip_owned_and_halo(self):
        graph = random_graph(35, 0.15, seed=5)
        partition = partition_graph(graph, 3)
        for block in partition.blocks:
            if not block.column_nodes.size:
                continue
            local = np.arange(block.column_nodes.size)
            assert np.array_equal(block.to_local(block.to_global(local)),
                                  local)
            assert np.array_equal(block.to_global(block.to_local(
                block.column_nodes)), block.column_nodes)

    def test_foreign_node_rejected(self):
        graph = star_graph(6)  # centre 0, leaves 1..6
        partition = partition_from_assignment(
            graph, np.array([0, 0, 0, 0, 1, 1, 1]), 2)
        # leaf 1 is owned by shard 0 and not adjacent to any shard-1
        # node except through the centre; shard 1's halo is {0} only.
        block = partition.blocks[1]
        assert np.array_equal(block.halo_nodes, [0])
        with pytest.raises(ValidationError):
            block.to_local(np.array([1]))

    def test_local_out_of_range_rejected(self):
        graph = chain_graph(6)
        block = partition_graph(graph, 2).blocks[0]
        with pytest.raises(ValidationError):
            block.to_global(np.array([block.column_nodes.size]))

    def test_shard_of(self):
        graph = chain_graph(10)
        partition = partition_graph(graph, 2)
        for node in range(10):
            assert partition.shard_of(node) == partition.assignment[node]
        with pytest.raises(ValidationError):
            partition.shard_of(10)


class TestValidationAndStats:
    def test_bad_num_shards(self):
        with pytest.raises(ValidationError):
            partition_graph(chain_graph(4), 0)

    def test_bad_method(self):
        with pytest.raises(ValidationError):
            partition_graph(chain_graph(4), 2, method="metis")

    def test_bad_assignment_shape(self):
        with pytest.raises(ValidationError):
            partition_from_assignment(chain_graph(4), np.zeros(3), 2)

    def test_bad_assignment_values(self):
        with pytest.raises(ValidationError):
            partition_from_assignment(chain_graph(4),
                                      np.array([0, 1, 2, 0]), 2)

    def test_empty_graph(self):
        partition = partition_graph(Graph.empty(0), 2)
        assert partition.num_shards == 2
        stats = partition.stats()
        assert stats.cut_edges == 0 and stats.balance == 1.0

    def test_describe_mentions_cut_and_balance(self):
        graph = grid_graph(6, 6)
        text = partition_graph(graph, 2).describe()
        assert "cut edges" in text and "balance" in text
        assert "shard 0" in text and "shard 1" in text

    def test_single_shard_has_no_cut(self):
        graph = random_graph(25, 0.2, seed=1)
        stats = partition_graph(graph, 1).stats()
        assert stats.cut_edges == 0
        assert stats.halo_total == 0
        assert stats.balance == 1.0
