"""Block-Jacobi engine equivalence: sharded sweeps == single-matrix runs."""

from __future__ import annotations

import numpy as np
import pytest

from repro.coupling import fraud_matrix, synthetic_residual_matrix
from repro.engine import batch as engine_batch
from repro.engine import plan as engine_plan
from repro.exceptions import NotConvergentParametersError, ValidationError
from repro.graphs import grid_graph, random_graph, torus_graph
from repro.shard import (
    SequentialShardExecutor,
    get_sharded_plan,
    partition_graph,
    run_sharded_batch,
)


def _query_batch(num_nodes, num_queries=3, num_classes=3, seed=0):
    rng = np.random.default_rng(seed)
    explicits = []
    for _ in range(num_queries):
        explicit = np.zeros((num_nodes, num_classes))
        labeled = rng.choice(num_nodes, max(num_nodes // 10, 1),
                             replace=False)
        values = rng.uniform(-0.1, 0.1, (labeled.size, num_classes - 1))
        explicit[labeled, :-1] = values
        explicit[labeled, -1] = -values.sum(axis=1)
        explicits.append(explicit)
    return explicits


class TestEquivalence:
    @pytest.mark.parametrize("num_shards", [1, 2, 3, 5])
    @pytest.mark.parametrize("method", ["bfs", "hash"])
    def test_matches_run_batch_to_tolerance(self, num_shards, method):
        graph = random_graph(80, 0.08, seed=11)
        coupling = synthetic_residual_matrix(epsilon=0.04)
        explicits = _query_batch(80)
        base = engine_batch.run_batch(
            engine_plan.get_plan(graph, coupling), explicits,
            max_iterations=100, tolerance=1e-10)
        partition = partition_graph(graph, num_shards, method=method)
        results = run_sharded_batch(
            get_sharded_plan(partition, coupling), explicits,
            max_iterations=100, tolerance=1e-10)
        for sharded, single in zip(results, base):
            assert np.abs(sharded.beliefs - single.beliefs).max() < 1e-10
            assert sharded.iterations == single.iterations
            assert sharded.converged == single.converged
            assert len(sharded.residual_history) \
                == len(single.residual_history)

    def test_linbp_star_no_echo(self):
        graph = torus_graph()
        coupling = fraud_matrix(epsilon=0.1)
        explicits = _query_batch(8, num_queries=2, seed=3)
        base = engine_batch.run_batch(
            engine_plan.get_plan(graph, coupling, echo_cancellation=False),
            explicits, num_iterations=12)
        partition = partition_graph(graph, 3)
        results = run_sharded_batch(
            get_sharded_plan(partition, coupling, echo_cancellation=False),
            explicits, num_iterations=12)
        for sharded, single in zip(results, base):
            assert np.abs(sharded.beliefs - single.beliefs).max() < 1e-10
            assert sharded.method == "LinBP*"

    def test_fixed_iteration_mode(self):
        graph = grid_graph(8, 8)
        coupling = synthetic_residual_matrix(epsilon=0.05)
        explicits = _query_batch(64, num_queries=2, seed=5)
        base = engine_batch.run_batch(
            engine_plan.get_plan(graph, coupling), explicits,
            num_iterations=7)
        partition = partition_graph(graph, 4)
        results = run_sharded_batch(get_sharded_plan(partition, coupling),
                                    explicits, num_iterations=7)
        for sharded, single in zip(results, base):
            assert np.abs(sharded.beliefs - single.beliefs).max() < 1e-10
            assert sharded.iterations == 7

    def test_initial_beliefs_warm_start(self):
        graph = grid_graph(6, 6)
        coupling = synthetic_residual_matrix(epsilon=0.05)
        explicits = _query_batch(36, num_queries=2, seed=7)
        starts = [explicits[0] * 0.5, None]
        base = engine_batch.run_batch(
            engine_plan.get_plan(graph, coupling), explicits,
            initial_beliefs=starts, num_iterations=5)
        partition = partition_graph(graph, 2)
        results = run_sharded_batch(get_sharded_plan(partition, coupling),
                                    explicits, initial_beliefs=starts,
                                    num_iterations=5)
        for sharded, single in zip(results, base):
            assert np.abs(sharded.beliefs - single.beliefs).max() < 1e-10

    def test_per_query_freezing_matches(self):
        # one query converges much earlier than the other; its beliefs
        # must be frozen at its own convergence sweep, as in run_batch.
        graph = grid_graph(7, 7)
        coupling = synthetic_residual_matrix(epsilon=0.02)
        fast = np.zeros((49, 3))
        fast[0] = [1e-9, -5e-10, -5e-10]
        slow = _query_batch(49, num_queries=1, seed=9)[0]
        base = engine_batch.run_batch(
            engine_plan.get_plan(graph, coupling), [fast, slow],
            max_iterations=200, tolerance=1e-10)
        partition = partition_graph(graph, 3)
        results = run_sharded_batch(get_sharded_plan(partition, coupling),
                                    [fast, slow], max_iterations=200,
                                    tolerance=1e-10)
        assert results[0].iterations < results[1].iterations
        for sharded, single in zip(results, base):
            assert np.abs(sharded.beliefs - single.beliefs).max() < 1e-10
            assert sharded.iterations == single.iterations

    def test_extra_metadata(self):
        graph = grid_graph(5, 5)
        coupling = synthetic_residual_matrix(epsilon=0.05)
        partition = partition_graph(graph, 2)
        result = run_sharded_batch(get_sharded_plan(partition, coupling),
                                   _query_batch(25, num_queries=1),
                                   num_iterations=3)[0]
        assert result.extra["engine"] == "shard"
        assert result.extra["num_shards"] == 2


class TestPlanAndValidation:
    def test_plan_cache_reuses_and_invalidates(self):
        graph = grid_graph(5, 5)
        coupling = synthetic_residual_matrix(epsilon=0.05)
        partition = partition_graph(graph, 2)
        first = get_sharded_plan(partition, coupling)
        assert get_sharded_plan(partition, coupling) is first
        other_partition = partition_graph(graph, 2)
        assert get_sharded_plan(other_partition, coupling) is not first

    def test_cached_plan_does_not_pin_the_partition(self):
        import gc
        import weakref

        graph = grid_graph(5, 5)
        coupling = synthetic_residual_matrix(epsilon=0.05)
        partition = partition_graph(graph, 2)
        plan = get_sharded_plan(partition, coupling)
        partition_ref = weakref.ref(partition)
        del partition
        gc.collect()
        # the cache holds the plan, but the partition (and its duplicated
        # CSR blocks) must be collectable regardless
        assert partition_ref() is None
        assert plan.partition is None
        with pytest.raises(ValidationError):
            run_sharded_batch(plan, [np.zeros((25, 3))], num_iterations=1)

    def test_empty_batch(self):
        graph = grid_graph(4, 4)
        partition = partition_graph(graph, 2)
        plan = get_sharded_plan(partition,
                                synthetic_residual_matrix(epsilon=0.05))
        assert run_sharded_batch(plan, []) == []

    def test_bad_explicit_shape(self):
        graph = grid_graph(4, 4)
        partition = partition_graph(graph, 2)
        plan = get_sharded_plan(partition,
                                synthetic_residual_matrix(epsilon=0.05))
        with pytest.raises(ValidationError):
            run_sharded_batch(plan, [np.zeros((5, 3))])

    def test_bad_parameters(self):
        graph = grid_graph(4, 4)
        partition = partition_graph(graph, 2)
        plan = get_sharded_plan(partition,
                                synthetic_residual_matrix(epsilon=0.05))
        explicit = [np.zeros((16, 3))]
        with pytest.raises(ValidationError):
            run_sharded_batch(plan, explicit, max_iterations=0)
        with pytest.raises(ValidationError):
            run_sharded_batch(plan, explicit, tolerance=0.0)

    def test_require_convergence_raises_on_divergent_scale(self):
        graph = grid_graph(6, 6)
        coupling = synthetic_residual_matrix(epsilon=10.0)
        partition = partition_graph(graph, 2)
        plan = get_sharded_plan(partition, coupling)
        with pytest.raises(NotConvergentParametersError):
            run_sharded_batch(plan, [np.zeros((36, 3))],
                              require_convergence=True)

    def test_executor_partition_mismatch_rejected(self):
        graph = grid_graph(4, 4)
        coupling = synthetic_residual_matrix(epsilon=0.05)
        plan = get_sharded_plan(partition_graph(graph, 2), coupling)
        foreign = SequentialShardExecutor(partition_graph(graph, 2))
        with pytest.raises(ValidationError):
            run_sharded_batch(plan, [np.zeros((16, 3))],
                              num_iterations=2, executor=foreign)

    def test_sequential_executor_reuse_across_widths(self):
        graph = grid_graph(5, 5)
        coupling = synthetic_residual_matrix(epsilon=0.05)
        partition = partition_graph(graph, 2)
        plan = get_sharded_plan(partition, coupling)
        with SequentialShardExecutor(partition) as executor:
            wide = run_sharded_batch(plan, _query_batch(25, num_queries=3),
                                     num_iterations=4, executor=executor)
            narrow = run_sharded_batch(plan, _query_batch(25, num_queries=1),
                                       num_iterations=4, executor=executor)
        assert len(wide) == 3 and len(narrow) == 1
