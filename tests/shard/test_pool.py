"""Worker-pool executor tests: equivalence, reuse, lifecycle, failure modes."""

from __future__ import annotations

import numpy as np
import pytest

from repro.coupling import synthetic_residual_matrix
from repro.engine import batch as engine_batch
from repro.engine import plan as engine_plan
from repro.exceptions import ValidationError
from repro.graphs import grid_graph, random_graph
from repro.shard import (
    ShardWorkerPool,
    get_sharded_plan,
    partition_graph,
    run_sharded_batch,
)


@pytest.fixture(scope="module")
def workload():
    graph = random_graph(120, 0.06, seed=8)
    coupling = synthetic_residual_matrix(epsilon=0.04)
    rng = np.random.default_rng(1)
    explicits = []
    for _ in range(3):
        explicit = np.zeros((120, 3))
        labeled = rng.choice(120, 10, replace=False)
        values = rng.uniform(-0.1, 0.1, (10, 2))
        explicit[labeled, 0] = values[:, 0]
        explicit[labeled, 1] = values[:, 1]
        explicit[labeled, 2] = -values.sum(axis=1)
        explicits.append(explicit)
    return graph, coupling, explicits


class TestPoolEquivalence:
    def test_matches_run_batch_and_reuses_across_batches(self, workload):
        graph, coupling, explicits = workload
        base = engine_batch.run_batch(
            engine_plan.get_plan(graph, coupling), explicits,
            max_iterations=100, tolerance=1e-10)
        partition = partition_graph(graph, 4)
        plan = get_sharded_plan(partition, coupling)
        with ShardWorkerPool(partition) as pool:
            results = run_sharded_batch(plan, explicits, max_iterations=100,
                                        tolerance=1e-10, executor=pool)
            for pooled, single in zip(results, base):
                assert np.abs(pooled.beliefs - single.beliefs).max() < 1e-10
                assert pooled.iterations == single.iterations
                assert pooled.converged == single.converged
            # second batch on the same pool: narrower width, fixed sweeps
            narrow_base = engine_batch.run_batch(
                engine_plan.get_plan(graph, coupling), explicits[:1],
                num_iterations=6)
            narrow = run_sharded_batch(plan, explicits[:1],
                                       num_iterations=6, executor=pool)
            assert np.abs(narrow[0].beliefs
                          - narrow_base[0].beliefs).max() < 1e-10

    def test_pool_with_empty_shards(self, workload):
        _, coupling, _ = workload
        graph = grid_graph(2, 2)  # 4 nodes, 8 shards -> empty blocks
        explicit = np.zeros((4, 3))
        explicit[0] = [0.1, -0.05, -0.05]
        base = engine_batch.run_batch(
            engine_plan.get_plan(graph, coupling), [explicit],
            num_iterations=5)
        partition = partition_graph(graph, 8)
        plan = get_sharded_plan(partition, coupling)
        with ShardWorkerPool(partition) as pool:
            result = run_sharded_batch(plan, [explicit], num_iterations=5,
                                       executor=pool)[0]
        assert np.abs(result.beliefs - base[0].beliefs).max() < 1e-10


class TestPoolLifecycle:
    def test_close_is_idempotent_and_rejects_further_use(self, workload):
        graph, coupling, explicits = workload
        partition = partition_graph(graph, 2)
        plan = get_sharded_plan(partition, coupling)
        pool = ShardWorkerPool(partition)
        run_sharded_batch(plan, explicits[:1], num_iterations=2,
                          executor=pool)
        pool.close()
        pool.close()
        with pytest.raises(ValidationError):
            pool.load(plan, np.zeros((graph.num_nodes, 3)))
        with pytest.raises(ValidationError):
            pool.step()

    def test_capacity_exceeded_rejected(self, workload):
        graph, coupling, explicits = workload
        partition = partition_graph(graph, 2)
        plan = get_sharded_plan(partition, coupling)
        with ShardWorkerPool(partition, max_columns=3) as pool:
            with pytest.raises(ValidationError):
                run_sharded_batch(plan, explicits, num_iterations=2,
                                  executor=pool)
            # a batch that fits still works on the same pool
            result = run_sharded_batch(plan, explicits[:1],
                                       num_iterations=2, executor=pool)
            assert len(result) == 1

    def test_bad_max_columns(self, workload):
        graph, _, _ = workload
        with pytest.raises(ValidationError):
            ShardWorkerPool(partition_graph(graph, 2), max_columns=0)

    def test_foreign_plan_rejected(self, workload):
        graph, coupling, _ = workload
        partition = partition_graph(graph, 2)
        other = partition_graph(graph, 2)
        plan = get_sharded_plan(other, coupling)
        with ShardWorkerPool(partition) as pool:
            with pytest.raises(ValidationError):
                pool.load(plan, np.zeros((graph.num_nodes, 3)))

    def test_step_before_load_rejected(self, workload):
        graph, _, _ = workload
        with ShardWorkerPool(partition_graph(graph, 2)) as pool:
            with pytest.raises(ValidationError):
                pool.step()
