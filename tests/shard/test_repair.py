"""Incremental partition repair: block equality, carry-over, drift."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.graphs import random_graph
from repro.graphs.graph import Edge, Graph
from repro.shard import (
    cut_drift,
    partition_from_assignment,
    partition_graph,
    repair_partition,
)


def _graph(num_nodes=60, seed=5):
    return random_graph(num_nodes, 0.1, seed=seed)


def _missing_edges(graph, count, seed=9):
    rng = np.random.default_rng(seed)
    chosen = set()
    edges = []
    while len(edges) < count:
        u, v = (int(x) for x in rng.integers(0, graph.num_nodes, size=2))
        if u == v or (u, v) in chosen or (v, u) in chosen:
            continue
        if graph.adjacency[u, v] != 0:
            continue
        chosen.add((u, v))
        edges.append((u, v))
    return edges


def _assert_blocks_equal(left, right):
    assert left.num_shards == right.num_shards
    assert np.array_equal(left.assignment, right.assignment)
    for ours, fresh in zip(left.blocks, right.blocks):
        assert np.array_equal(ours.nodes, fresh.nodes)
        assert np.array_equal(ours.halo_nodes, fresh.halo_nodes)
        assert np.array_equal(ours.halo_owners, fresh.halo_owners)
        assert np.array_equal(ours.degrees, fresh.degrees)
        assert (ours.adjacency != fresh.adjacency).nnz == 0


class TestRepairEquivalence:
    @pytest.mark.parametrize("method", ["bfs", "hash"])
    def test_single_delta_matches_fresh_partition(self, method):
        graph = _graph()
        partition = partition_graph(graph, 4, method=method)
        delta = _missing_edges(graph, 3)
        new_graph = graph.with_edges_added(delta)
        repaired = repair_partition(partition, new_graph, delta)
        fresh = partition_from_assignment(new_graph, partition.assignment,
                                          4, method=method)
        _assert_blocks_equal(repaired.partition, fresh)

    def test_delta_chain_stays_equivalent(self):
        graph = _graph()
        partition = partition_graph(graph, 3, method="bfs")
        for step in range(6):
            delta = _missing_edges(partition.graph, 2, seed=100 + step)
            new_graph = partition.graph.with_edges_added(delta)
            partition = repair_partition(partition, new_graph, delta).partition
        fresh = partition_from_assignment(partition.graph,
                                          partition.assignment, 3,
                                          method="bfs")
        _assert_blocks_equal(partition, fresh)

    def test_untouched_blocks_are_carried_over_by_identity(self):
        graph = _graph()
        partition = partition_graph(graph, 4, method="bfs")
        assignment = partition.assignment
        # A delta inside one shard: pick two non-adjacent nodes of shard 0.
        shard0 = np.flatnonzero(assignment == 0)
        pair = None
        for u in shard0:
            for v in shard0:
                if u < v and graph.adjacency[int(u), int(v)] == 0:
                    pair = (int(u), int(v))
                    break
            if pair:
                break
        assert pair is not None
        new_graph = graph.with_edges_added([pair])
        result = repair_partition(partition, new_graph, [pair])
        assert result.repaired_shards == (0,)
        for shard in range(1, 4):
            assert result.partition.blocks[shard] is partition.blocks[shard]

    def test_edge_objects_and_weighted_tuples_accepted(self):
        graph = _graph()
        partition = partition_graph(graph, 2, method="bfs")
        (u, v), (x, y) = _missing_edges(graph, 2)
        delta = [Edge(u, v, 0.5), (x, y, 2.0)]
        new_graph = graph.with_edges_added(delta)
        repaired = repair_partition(partition, new_graph, delta).partition
        fresh = partition_from_assignment(new_graph, partition.assignment, 2)
        _assert_blocks_equal(repaired, fresh)


class TestRepairValidation:
    def test_node_count_must_match(self):
        graph = _graph()
        partition = partition_graph(graph, 2)
        bigger = Graph.from_edges(
            [(e.source, e.target, e.weight) for e in graph.edges()],
            num_nodes=graph.num_nodes + 1)
        with pytest.raises(ValidationError):
            repair_partition(partition, bigger, [(0, 1)])

    def test_empty_delta_rejected(self):
        graph = _graph()
        partition = partition_graph(graph, 2)
        with pytest.raises(ValidationError):
            repair_partition(partition, graph, [])

    def test_out_of_range_endpoint_rejected(self):
        graph = _graph()
        partition = partition_graph(graph, 2)
        with pytest.raises(ValidationError):
            repair_partition(partition, graph, [(0, graph.num_nodes)])

    def test_malformed_edge_rejected(self):
        graph = _graph()
        partition = partition_graph(graph, 2)
        with pytest.raises(ValidationError):
            repair_partition(partition, graph, [(0, 1, 1.0, "extra")])


class TestCutDrift:
    def test_no_drift_when_cut_unchanged(self):
        graph = _graph()
        stats = partition_graph(graph, 3).stats()
        assert cut_drift(stats, stats) == 0.0

    def test_drift_grows_with_cross_shard_deltas(self):
        graph = _graph()
        partition = partition_graph(graph, 2, method="bfs")
        baseline = partition.stats()
        assignment = partition.assignment
        # Land every new edge across the cut.
        left = np.flatnonzero(assignment == 0)
        right = np.flatnonzero(assignment == 1)
        delta = []
        for u in left[:6]:
            for v in right[:6]:
                if graph.adjacency[int(u), int(v)] == 0:
                    delta.append((int(u), int(v)))
        assert delta
        new_graph = graph.with_edges_added(delta)
        repaired = repair_partition(partition, new_graph, delta).partition
        drift = cut_drift(baseline, repaired.stats())
        assert drift > 0.0
        # An improvement (hypothetically) would clamp at zero.
        assert cut_drift(repaired.stats(), baseline) == 0.0
