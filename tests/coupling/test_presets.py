"""Unit tests for the paper's concrete coupling matrices (Figs. 1, 6b, 11a)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.coupling import (
    dblp_residual_matrix,
    fraud_matrix,
    general_heterophily,
    general_homophily,
    heterophily_matrix,
    homophily_matrix,
    synthetic_residual_matrix,
)


class TestFigurePresets:
    def test_homophily_fig1a(self):
        coupling = homophily_matrix()
        assert coupling.num_classes == 2
        assert np.allclose(coupling.stochastic, [[0.8, 0.2], [0.2, 0.8]])
        assert coupling.is_homophily()
        assert coupling.name_of(0) == "D"

    def test_heterophily_fig1b(self):
        coupling = heterophily_matrix()
        assert np.allclose(coupling.stochastic, [[0.3, 0.7], [0.7, 0.3]])
        assert not coupling.is_homophily()

    def test_fraud_fig1c(self):
        coupling = fraud_matrix()
        expected = np.array([[0.6, 0.3, 0.1], [0.3, 0.0, 0.7], [0.1, 0.7, 0.2]])
        assert np.allclose(coupling.stochastic, expected)
        assert coupling.name_of(2) == "F"

    def test_fraud_spectral_radius_matches_example_20(self):
        # Example 20 quotes rho(Ho) ~= 0.629.
        assert fraud_matrix().spectral_radius(scaled=False) == pytest.approx(0.629,
                                                                             abs=1e-3)

    def test_synthetic_fig6b(self):
        coupling = synthetic_residual_matrix()
        assert coupling.num_classes == 3
        assert np.allclose(coupling.unscaled_residual * 100,
                           [[10, -4, -6], [-4, 7, -3], [-6, -3, 9]])

    def test_dblp_fig11a(self):
        coupling = dblp_residual_matrix()
        assert coupling.num_classes == 4
        assert np.allclose(np.diag(coupling.unscaled_residual), 0.06)
        off_diagonal = coupling.unscaled_residual[~np.eye(4, dtype=bool)]
        assert np.allclose(off_diagonal, -0.02)
        assert coupling.is_homophily()
        assert coupling.name_of(1) == "DB"

    def test_epsilon_passthrough(self):
        assert homophily_matrix(epsilon=0.3).epsilon == 0.3
        assert synthetic_residual_matrix(epsilon=0.01).epsilon == 0.01


class TestGenericPresets:
    def test_general_homophily_rows_sum_to_zero(self):
        coupling = general_homophily(5, strength=0.2)
        assert np.allclose(coupling.unscaled_residual.sum(axis=1), 0.0)
        assert coupling.is_homophily()

    def test_general_heterophily(self):
        coupling = general_heterophily(4, strength=0.2)
        assert np.all(np.diag(coupling.unscaled_residual) < 0)
        assert not coupling.is_homophily()

    def test_general_requires_two_classes(self):
        with pytest.raises(ValueError):
            general_homophily(1)
        with pytest.raises(ValueError):
            general_heterophily(1)
