"""Unit tests for coupling-matrix handling (centering, scaling, validation)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.coupling import (
    CouplingMatrix,
    is_doubly_stochastic,
    make_doubly_stochastic,
    residual_from_stochastic,
    stochastic_from_residual,
)
from repro.exceptions import ValidationError


class TestStochasticHelpers:
    def test_is_doubly_stochastic_accepts_valid(self):
        assert is_doubly_stochastic(np.array([[0.8, 0.2], [0.2, 0.8]]))

    def test_is_doubly_stochastic_rejects_row_only(self):
        matrix = np.array([[0.5, 0.5], [0.9, 0.1]])
        assert not is_doubly_stochastic(matrix)

    def test_is_doubly_stochastic_rejects_non_square(self):
        assert not is_doubly_stochastic(np.ones((2, 3)) / 3)

    def test_residual_centering_roundtrip(self):
        stochastic = np.array([[0.6, 0.3, 0.1], [0.3, 0.0, 0.7], [0.1, 0.7, 0.2]])
        residual = residual_from_stochastic(stochastic)
        assert np.allclose(residual.sum(axis=0), 0.0)
        assert np.allclose(residual.sum(axis=1), 0.0)
        assert np.allclose(stochastic_from_residual(residual), stochastic)

    def test_sinkhorn_balancing(self):
        affinity = np.array([[5.0, 1.0], [1.0, 5.0]])
        balanced = make_doubly_stochastic(affinity)
        assert is_doubly_stochastic(balanced)

    def test_sinkhorn_rejects_negative(self):
        with pytest.raises(ValidationError):
            make_doubly_stochastic(np.array([[1.0, -1.0], [0.5, 0.5]]))

    def test_sinkhorn_rejects_zero_row(self):
        with pytest.raises(ValidationError):
            make_doubly_stochastic(np.array([[0.0, 0.0], [1.0, 1.0]]))

    def test_sinkhorn_rejects_non_square(self):
        with pytest.raises(ValidationError):
            make_doubly_stochastic(np.ones((2, 3)))


class TestCouplingMatrix:
    def test_from_stochastic(self):
        coupling = CouplingMatrix.from_stochastic(np.array([[0.8, 0.2], [0.2, 0.8]]))
        assert coupling.num_classes == 2
        assert np.allclose(coupling.residual, [[0.3, -0.3], [-0.3, 0.3]])

    def test_from_stochastic_rejects_non_stochastic(self):
        with pytest.raises(ValidationError):
            CouplingMatrix.from_stochastic(np.array([[0.9, 0.2], [0.2, 0.8]]))

    def test_from_stochastic_with_balancing(self):
        coupling = CouplingMatrix.from_stochastic(np.array([[5.0, 1.0], [1.0, 5.0]]),
                                                  balance=True)
        assert np.allclose(coupling.unscaled_residual.sum(axis=0), 0.0)

    def test_from_residual_validates_zero_sums(self):
        with pytest.raises(ValidationError):
            CouplingMatrix.from_residual(np.array([[0.2, 0.1], [0.1, 0.2]]))

    def test_symmetry_required(self):
        with pytest.raises(ValidationError):
            CouplingMatrix.from_residual(np.array([[0.1, -0.1], [0.1, -0.1]]))

    def test_at_least_two_classes(self):
        with pytest.raises(ValidationError):
            CouplingMatrix.from_residual(np.array([[0.0]]))

    def test_positive_epsilon_required(self):
        with pytest.raises(ValidationError):
            CouplingMatrix.from_residual(np.array([[0.1, -0.1], [-0.1, 0.1]]),
                                         epsilon=0.0)

    def test_scaling(self):
        coupling = CouplingMatrix.from_residual(np.array([[0.1, -0.1], [-0.1, 0.1]]))
        scaled = coupling.scaled(0.5)
        assert scaled.epsilon == 0.5
        assert np.allclose(scaled.residual, 0.5 * coupling.unscaled_residual)
        # The original is unchanged (immutability).
        assert coupling.epsilon == 1.0

    def test_residual_squared(self):
        coupling = CouplingMatrix.from_residual(np.array([[0.1, -0.1], [-0.1, 0.1]]),
                                                epsilon=2.0)
        assert np.allclose(coupling.residual_squared,
                           coupling.residual @ coupling.residual)

    def test_stochastic_view(self):
        residual = np.array([[0.1, -0.1], [-0.1, 0.1]])
        coupling = CouplingMatrix.from_residual(residual)
        assert np.allclose(coupling.stochastic, residual + 0.5)

    def test_spectral_radius_scales_linearly(self):
        coupling = CouplingMatrix.from_residual(np.array([[0.1, -0.1], [-0.1, 0.1]]))
        assert coupling.scaled(2.0).spectral_radius() == pytest.approx(
            2.0 * coupling.spectral_radius())
        assert coupling.scaled(2.0).spectral_radius(scaled=False) == pytest.approx(
            coupling.spectral_radius(scaled=False))

    def test_minimum_norm_bounds_radius(self):
        coupling = CouplingMatrix.from_residual(
            np.array([[0.10, -0.04, -0.06], [-0.04, 0.07, -0.03], [-0.06, -0.03, 0.09]]))
        assert coupling.minimum_norm() >= coupling.spectral_radius() - 1e-12

    def test_class_names(self):
        coupling = CouplingMatrix.from_residual(np.array([[0.1, -0.1], [-0.1, 0.1]]),
                                                class_names=("yes", "no"))
        assert coupling.name_of(0) == "yes"
        unnamed = CouplingMatrix.from_residual(np.array([[0.1, -0.1], [-0.1, 0.1]]))
        assert unnamed.name_of(1) == "class1"

    def test_class_names_length_checked(self):
        with pytest.raises(ValidationError):
            CouplingMatrix.from_residual(np.array([[0.1, -0.1], [-0.1, 0.1]]),
                                         class_names=("only-one",))

    def test_is_homophily(self):
        homophily = CouplingMatrix.from_residual(np.array([[0.1, -0.1], [-0.1, 0.1]]))
        heterophily = CouplingMatrix.from_residual(np.array([[-0.1, 0.1], [0.1, -0.1]]))
        assert homophily.is_homophily()
        assert not heterophily.is_homophily()
