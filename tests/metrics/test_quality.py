"""Unit tests for the Section 7 quality metrics."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.metrics import QualityScores, labeling_accuracy, precision_recall


class TestPrecisionRecall:
    def test_paper_worked_example(self):
        """GT: {v1→c1, v2→c2, v3→c3}; other: {v1→{c1,c2}, v2→c2, v3→c2}.

        The paper computes r = 2/3 and p = 2/4.
        """
        ground_truth = [{0}, {1}, {2}]
        predicted = [{0, 1}, {1}, {1}]
        scores = precision_recall(ground_truth, predicted)
        assert scores.recall == pytest.approx(2 / 3)
        assert scores.precision == pytest.approx(2 / 4)

    def test_perfect_agreement(self):
        sets = [{0}, {1}, {2, 3}]
        scores = precision_recall(sets, sets)
        assert scores.precision == 1.0 and scores.recall == 1.0 and scores.f1 == 1.0

    def test_no_overlap(self):
        scores = precision_recall([{0}], [{1}])
        assert scores.precision == 0.0 and scores.recall == 0.0 and scores.f1 == 0.0

    def test_restrict_to_subset(self):
        ground_truth = [{0}, {1}, {0}]
        predicted = [{0}, {0}, {1}]
        scores = precision_recall(ground_truth, predicted, restrict_to=[0])
        assert scores.precision == 1.0 and scores.recall == 1.0

    def test_empty_sets_handled(self):
        scores = precision_recall([set(), {1}], [set(), {1}])
        assert scores.recall == 1.0 and scores.precision == 1.0

    def test_all_empty(self):
        scores = precision_recall([set()], [set()])
        assert scores.precision == 0.0 and scores.recall == 0.0

    def test_f1_is_harmonic_mean(self):
        scores = QualityScores(precision=0.5, recall=1.0, shared=1,
                               ground_truth_size=1, predicted_size=2)
        assert scores.f1 == pytest.approx(2 * 0.5 * 1.0 / 1.5)

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValidationError):
            precision_recall([{0}], [{0}, {1}])


class TestLabelingAccuracy:
    def test_basic(self):
        truth = np.array([0, 1, 2, 1])
        predicted = np.array([0, 1, 1, 1])
        assert labeling_accuracy(truth, predicted) == pytest.approx(0.75)

    def test_missing_predictions_skipped(self):
        truth = np.array([0, 1, 2])
        predicted = np.array([0, -1, 2])
        assert labeling_accuracy(truth, predicted) == pytest.approx(1.0)

    def test_restrict_to(self):
        truth = np.array([0, 1, 0])
        predicted = np.array([1, 1, 1])
        assert labeling_accuracy(truth, predicted, restrict_to=[1]) == 1.0

    def test_all_missing(self):
        assert labeling_accuracy(np.array([-1]), np.array([0])) == 0.0

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValidationError):
            labeling_accuracy(np.array([0, 1]), np.array([0]))
