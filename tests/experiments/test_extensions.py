"""Tests for the future-work extension experiments (estimated Ĥ, incremental LinBP)."""

from __future__ import annotations

from repro.experiments import (
    run_estimated_coupling_experiment,
    run_incremental_linbp_experiment,
)


class TestEstimatedCouplingExperiment:
    def test_ordering_of_accuracies(self):
        table = run_estimated_coupling_experiment(num_papers=300, seed=0)
        rows = {row["coupling"]: row for row in table.rows}
        true_row = rows["true (Fig. 11a)"]
        estimated_row = rows["estimated from labels"]
        wrong_row = rows["mis-specified (heterophily)"]
        # The estimated coupling recovers most of the accuracy of the true
        # one, and both are far better than a mis-specified coupling.
        assert true_row["linbp_truth_accuracy"] > 0.7
        assert estimated_row["linbp_truth_accuracy"] > 0.6
        assert estimated_row["linbp_truth_accuracy"] > wrong_row["linbp_truth_accuracy"] + 0.2
        assert true_row["linbp_truth_accuracy"] >= \
            estimated_row["linbp_truth_accuracy"] - 0.05

    def test_evidence_counter_reported(self):
        table = run_estimated_coupling_experiment(num_papers=300, seed=0)
        assert all(row["observed_labeled_edges"] > 0 for row in table.rows)


class TestIncrementalLinBPExperiment:
    def test_updates_match_scratch_and_report_iterations(self):
        table = run_incremental_linbp_experiment(graph_index=2)
        assert len(table) == 3
        for row in table.rows:
            assert row["max_difference_vs_scratch"] < 1e-7
            assert row["iterations"] >= 0
        labels_row = table.rows[1]
        assert "superposition" in labels_row["update"]
        edges_row = table.rows[2]
        assert "warm start" in edges_row["update"]
