"""Smoke and shape tests for the experiment harness (one per figure/table)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments import (
    ResultTable,
    run_bound_comparison,
    run_dataset_table,
    run_dblp_quality,
    run_explicit_fraction_sweep,
    run_incremental_beliefs,
    run_incremental_edges,
    run_memory_scalability,
    run_per_iteration_timing,
    run_quality_sweep,
    run_relational_scalability,
    run_timing_table,
    run_torus_sweep,
    torus_reference_values,
)


class TestResultTable:
    def test_add_rows_and_columns(self):
        table = ResultTable("demo")
        table.add_row(a=1, b=2.0)
        table.add_row(a=3, c="x")
        assert table.columns == ["a", "b", "c"]
        assert table.column("a") == [1, 3]
        assert table.column("b") == [2.0, None]
        assert len(table) == 2

    def test_text_rendering(self):
        table = ResultTable("demo")
        table.add_row(name="linbp", seconds=0.001234)
        text = table.to_text()
        assert "demo" in text and "linbp" in text and "seconds" in text

    def test_empty_rendering(self):
        assert "(empty)" in ResultTable("nothing").to_text()


class TestFig4Torus:
    def test_reference_values_match_example_20(self):
        reference = torus_reference_values()
        assert reference["rho_adjacency"] == pytest.approx(2.414, abs=1e-3)
        assert reference["rho_coupling_unscaled"] == pytest.approx(0.629, abs=1e-3)
        assert reference["exact_threshold_linbp"] == pytest.approx(0.488, abs=2e-3)
        assert reference["exact_threshold_linbp_star"] == pytest.approx(0.658, abs=2e-3)
        assert reference["sigma_slope"] == pytest.approx(0.332, abs=1e-3)
        assert np.allclose(reference["sbp_standardized_v4"],
                           [-0.069, 1.258, -1.189], atol=1e-3)

    def test_sweep_converges_to_sbp_for_small_epsilon(self):
        table = run_torus_sweep(epsilons=[0.01, 0.2])
        small, large = table.rows[0], table.rows[1]
        sbp_reference = np.array(small["sbp_std_beliefs"])
        assert np.allclose(small["linbp_std_beliefs"], sbp_reference, atol=0.01)
        assert np.allclose(small["bp_std_beliefs"], sbp_reference, atol=0.01)
        # At larger epsilon the deviation from SBP grows.
        deviation_small = np.abs(np.array(small["linbp_std_beliefs"]) - sbp_reference).max()
        deviation_large = np.abs(np.array(large["linbp_std_beliefs"]) - sbp_reference).max()
        assert deviation_large > deviation_small

    def test_sweep_flags_divergence_above_threshold(self):
        table = run_torus_sweep(epsilons=[0.3, 0.7], max_iterations=300)
        below, above = table.rows
        assert below["linbp_converges"] and below["linbp_converged"]
        assert not above["linbp_converges"]
        assert not above["linbp_converged"]

    def test_sigma_prediction_matches_measurement_for_small_epsilon(self):
        table = run_torus_sweep(epsilons=[0.02])
        row = table.rows[0]
        assert row["linbp_sigma"] == pytest.approx(row["sbp_sigma_prediction"],
                                                   rel=0.05)


class TestFig6Table:
    def test_rows_and_columns(self):
        table = run_dataset_table(max_index=2)
        assert len(table) == 2
        assert table.rows[0]["nodes"] == 243
        assert table.rows[1]["nodes"] == 729
        assert table.rows[1]["edges"] > table.rows[0]["edges"]


class TestFig7Scalability:
    def test_memory_scalability_shape(self):
        table = run_memory_scalability(max_index=2, include_bp=True)
        assert len(table) == 2
        for row in table:
            assert row["linbp_seconds"] > 0
            assert row["bp_seconds"] > 0
            # LinBP (direct belief updates) beats message-passing BP.
            assert row["bp_over_linbp"] > 1.0

    def test_relational_scalability_shape(self):
        table = run_relational_scalability(max_index=2)
        for row in table:
            assert row["linbp_sql_seconds"] > 0
            assert row["sbp_sql_seconds"] > 0
            # Single-pass SBP beats iterated relational LinBP.
            assert row["linbp_over_sbp"] > 1.0

    def test_combined_timing_table(self):
        table = run_timing_table(max_index=2, include_bp=False)
        assert len(table) == 2
        assert "sbp_sql_seconds" in table.columns


class TestFig7dPerIteration:
    def test_sbp_touches_each_edge_at_most_once(self):
        table = run_per_iteration_timing(graph_index=2, num_iterations=5)
        total_edges = None
        sbp_edges = sum(row["sbp_edges"] for row in table)
        linbp_edges_per_iteration = [row["linbp_edges"] for row in table
                                     if row["linbp_edges"]]
        assert linbp_edges_per_iteration
        total_edges = linbp_edges_per_iteration[0]
        # SBP processes at most the directed edge count once in total; LinBP
        # processes all edges every iteration.
        assert sbp_edges <= total_edges
        assert sum(linbp_edges_per_iteration) == total_edges * len(linbp_edges_per_iteration)


class TestFig7eIncremental:
    def test_memory_engine_rows(self):
        table = run_incremental_beliefs(graph_index=2, new_fractions=(0.1, 1.0),
                                        engine="memory")
        assert len(table) == 2
        small, full = table.rows
        assert small["nodes_updated"] <= full["nodes_updated"]
        assert small["delta_sbp_seconds"] > 0


class TestFig7fgQuality:
    def test_quality_above_099_in_convergent_range(self):
        table = run_quality_sweep(graph_index=2, epsilons=[1e-4, 1e-3])
        for row in table:
            assert row["within_sufficient_bound"]
            assert row["linbp_vs_bp_f1"] > 0.99
            assert row["linbp_star_vs_linbp_recall"] > 0.99
            assert row["sbp_vs_linbp_f1"] > 0.95


class TestFig10Sensitivity:
    def test_explicit_fraction_sweep(self):
        table = run_explicit_fraction_sweep(graph_index=2, fractions=(0.1, 0.8),
                                            num_iterations=3)
        assert len(table) == 2
        assert all(row["linbp_seconds"] > 0 and row["sbp_seconds"] > 0
                   for row in table)

    def test_incremental_edges(self):
        table = run_incremental_edges(graph_index=2, fractions=(0.01, 0.05),
                                      engine="memory")
        assert len(table) == 2
        assert table.rows[0]["num_new_edges"] < table.rows[1]["num_new_edges"]
        assert all(row["delta_sbp_seconds"] > 0 for row in table)


class TestFig11Dblp:
    def test_f1_above_090(self):
        from repro.datasets import generate_dblp_like
        dataset = generate_dblp_like(num_papers=250, num_authors=150,
                                     num_conferences=8, num_terms=70, seed=1)
        table = run_dblp_quality(dataset=dataset, epsilons=[1e-4, 1e-3])
        for row in table:
            assert row["linbp_f1"] > 0.9
            assert row["sbp_f1"] > 0.85
            assert row["linbp_truth_accuracy"] > 0.5


class TestAppendixG:
    def test_bound_comparison_shape(self):
        table = run_bound_comparison(max_index=1)
        row = table.rows[0]
        # Appendix G: rho(A_edge) < rho(A), roughly rho(A) - 1.
        assert row["rho_edge_adjacency"] < row["rho_adjacency"]
        assert 0.0 < row["rho_gap"] < 2.5
        assert row["linbp_epsilon_threshold"] > 0
        assert row["mooij_kappen_epsilon_threshold"] > 0
