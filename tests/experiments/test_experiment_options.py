"""Coverage for the experiment modules' secondary options and engines."""

from __future__ import annotations

from repro.experiments import (
    run_explicit_fraction_sweep,
    run_incremental_beliefs,
    run_incremental_edges,
    run_memory_scalability,
    run_quality_sweep,
    run_relational_scalability,
)
from repro.experiments.appendix_g_bounds import mooij_kappen_epsilon_threshold
from repro.coupling import fraud_matrix
from repro.datasets import kronecker_suite


class TestScalabilityOptions:
    def test_memory_scalability_without_bp(self):
        table = run_memory_scalability(max_index=1, include_bp=False)
        assert "bp_seconds" not in table.columns
        assert table.rows[0]["linbp_seconds"] > 0

    def test_memory_scalability_with_precomputed_workloads(self):
        workloads = kronecker_suite(max_index=1, seed=0)
        table = run_memory_scalability(workloads=workloads, include_bp=False)
        assert len(table) == 1
        assert table.rows[0]["nodes"] == workloads[0].num_nodes

    def test_relational_scalability_with_precomputed_workloads(self):
        workloads = kronecker_suite(max_index=1, seed=0)
        table = run_relational_scalability(workloads=workloads)
        assert len(table) == 1
        assert table.rows[0]["sbp_sql_seconds"] > 0


class TestIncrementalEngines:
    def test_fig7e_relational_engine(self):
        table = run_incremental_beliefs(graph_index=1, new_fractions=(0.2,),
                                        engine="relational")
        assert len(table) == 1
        assert table.rows[0]["delta_sbp_seconds"] > 0

    def test_fig10b_relational_engine(self):
        table = run_incremental_edges(graph_index=1, fractions=(0.02,),
                                      engine="relational")
        assert len(table) == 1
        assert table.rows[0]["num_new_edges"] > 0


class TestQualityOptions:
    def test_precision_floor_zero_scores_every_reachable_node(self):
        strict = run_quality_sweep(graph_index=1, epsilons=[1e-3],
                                   bp_precision_floor=0.0)
        assert strict.rows[0]["nodes_below_bp_precision"] == 0

    def test_excluded_node_count_grows_for_tiny_epsilon(self):
        table = run_quality_sweep(graph_index=1, epsilons=[1e-6, 1e-3])
        tiny, moderate = table.rows
        assert tiny["nodes_below_bp_precision"] >= moderate["nodes_below_bp_precision"]


class TestExplicitFractionSweep:
    def test_single_fraction(self):
        table = run_explicit_fraction_sweep(graph_index=1, fractions=(0.5,),
                                            num_iterations=2)
        assert len(table) == 1
        assert table.rows[0]["explicit_fraction"] == 0.5


class TestMooijKappenThreshold:
    def test_threshold_is_positive_and_finite_for_fig1c(self):
        threshold = mooij_kappen_epsilon_threshold(fraud_matrix(), edge_radius=2.0)
        assert 0.0 < threshold < 10.0

    def test_larger_edge_radius_gives_smaller_threshold(self):
        small = mooij_kappen_epsilon_threshold(fraud_matrix(), edge_radius=8.0)
        large = mooij_kappen_epsilon_threshold(fraud_matrix(), edge_radius=2.0)
        assert small < large

    def test_upper_cap_returned_when_bound_never_reached(self):
        # With a vanishing edge radius the bound never reaches 1 inside the
        # range where the potential stays valid, so the search cap is returned.
        threshold = mooij_kappen_epsilon_threshold(fraud_matrix(), edge_radius=1e-6,
                                                   upper=0.5)
        assert threshold == 0.5
