"""Tests for the ablation experiments (echo term, solver choice, wvRN baseline)."""

from __future__ import annotations
import pytest

from repro.experiments import (
    run_baseline_comparison,
    run_echo_cancellation_ablation,
    run_solver_ablation,
)


class TestEchoCancellationAblation:
    def test_both_variants_track_bp_in_convergent_range(self):
        table = run_echo_cancellation_ablation(graph_index=2, epsilons=(1e-4, 1e-3))
        for row in table.rows:
            assert row["linbp_f1_vs_bp"] > 0.99
            assert row["linbp_star_f1_vs_bp"] > 0.99

    def test_echo_term_changes_spectral_radius_at_large_epsilon(self):
        table = run_echo_cancellation_ablation(graph_index=2, epsilons=(5e-3,))
        row = table.rows[0]
        assert row["spectral_radius_linbp"] != pytest.approx(
            row["spectral_radius_linbp_star"], rel=1e-6)


class TestSolverAblation:
    def test_solvers_agree_numerically(self):
        table = run_solver_ablation(max_index=2)
        for row in table.rows:
            assert row["max_belief_difference"] < 1e-9

    def test_rows_per_workload(self):
        table = run_solver_ablation(max_index=2)
        assert [row["index"] for row in table.rows] == [1, 2]
        assert all(row["iterative_seconds"] > 0 and row["closed_form_seconds"] > 0
                   for row in table.rows)


class TestBaselineComparison:
    def test_wvrn_competitive_under_homophily_only(self):
        table = run_baseline_comparison(num_nodes=60, seed=0)
        rows = {row["scenario"]: row for row in table.rows}
        homophily = rows["homophily"]
        heterophily = rows["heterophily"]
        # Under homophily everyone does well.
        assert homophily["wvrn_accuracy"] > 0.8
        assert homophily["linbp_accuracy"] > 0.8
        # Under heterophily the coupling-aware methods keep working and wvRN
        # collapses to chance-level performance.
        assert heterophily["linbp_accuracy"] > 0.95
        assert heterophily["sbp_accuracy"] > 0.95
        assert heterophily["wvrn_accuracy"] < 0.6
