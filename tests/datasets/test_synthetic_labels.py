"""Unit tests for the explicit-belief samplers (Section 7 setup)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets import (
    belief_value_grid,
    sample_explicit_beliefs,
    sample_explicit_nodes,
    split_for_incremental_update,
)
from repro.exceptions import DatasetError


class TestBeliefValueGrid:
    def test_paper_grid(self):
        grid = belief_value_grid()
        assert grid[0] == pytest.approx(-0.1)
        assert grid[-1] == pytest.approx(0.1)
        assert len(grid) == 21
        assert 0.0 in grid

    def test_custom_grid(self):
        grid = belief_value_grid(step=0.05, bound=0.2)
        assert len(grid) == 9


class TestSampleExplicitNodes:
    def test_count_matches_fraction(self):
        nodes = sample_explicit_nodes(1000, 0.05, seed=1)
        assert len(nodes) == 50
        assert len(set(nodes.tolist())) == 50

    def test_at_least_one_node(self):
        assert len(sample_explicit_nodes(100, 0.001, seed=1)) == 1

    def test_deterministic(self):
        assert np.array_equal(sample_explicit_nodes(500, 0.1, seed=9),
                              sample_explicit_nodes(500, 0.1, seed=9))

    def test_exclusion_respected(self):
        exclude = list(range(50))
        nodes = sample_explicit_nodes(100, 0.3, seed=2, exclude=exclude)
        assert not set(nodes.tolist()) & set(exclude)

    def test_invalid_fraction(self):
        with pytest.raises(DatasetError):
            sample_explicit_nodes(100, 0.0)
        with pytest.raises(DatasetError):
            sample_explicit_nodes(100, 1.5)

    def test_everything_excluded(self):
        with pytest.raises(DatasetError):
            sample_explicit_nodes(3, 0.5, exclude=[0, 1, 2])


class TestSampleExplicitBeliefs:
    def test_rows_sum_to_zero(self):
        nodes = [1, 5, 9]
        beliefs = sample_explicit_beliefs(10, 3, nodes, seed=0)
        assert np.allclose(beliefs.sum(axis=1), 0.0, atol=1e-12)

    def test_only_selected_rows_nonzero(self):
        beliefs = sample_explicit_beliefs(10, 3, [2, 4], seed=0)
        nonzero = set(np.nonzero(np.any(beliefs != 0.0, axis=1))[0].tolist())
        assert nonzero == {2, 4}

    def test_values_from_grid(self):
        beliefs = sample_explicit_beliefs(20, 3, list(range(20)), seed=1)
        grid = set(np.round(belief_value_grid(), 10).tolist())
        for row in beliefs[:, :2]:
            for value in row:
                assert round(float(value), 10) in grid

    def test_deterministic(self):
        a = sample_explicit_beliefs(50, 3, list(range(0, 50, 5)), seed=4)
        b = sample_explicit_beliefs(50, 3, list(range(0, 50, 5)), seed=4)
        assert np.array_equal(a, b)

    def test_invalid_classes(self):
        with pytest.raises(DatasetError):
            sample_explicit_beliefs(10, 1, [0])


class TestSplitForIncrementalUpdate:
    def test_partition_sums_to_original(self):
        beliefs = sample_explicit_beliefs(100, 3, list(range(0, 100, 10)), seed=0)
        initial, update = split_for_incremental_update(beliefs, 0.4, seed=1)
        assert np.allclose(initial + update, beliefs)

    def test_fraction_of_labeled_nodes_moved(self):
        beliefs = sample_explicit_beliefs(100, 3, list(range(0, 100, 5)), seed=0)
        initial, update = split_for_incremental_update(beliefs, 0.5, seed=2)
        moved = np.count_nonzero(np.any(update != 0.0, axis=1))
        assert moved == 10  # half of the 20 labeled nodes

    def test_zero_and_full_fractions(self):
        beliefs = sample_explicit_beliefs(50, 3, [0, 10, 20], seed=0)
        initial, update = split_for_incremental_update(beliefs, 0.0, seed=0)
        assert np.allclose(update, 0.0) and np.allclose(initial, beliefs)
        initial, update = split_for_incremental_update(beliefs, 1.0, seed=0)
        assert np.allclose(initial, 0.0) and np.allclose(update, beliefs)

    def test_invalid_fraction(self):
        with pytest.raises(DatasetError):
            split_for_incremental_update(np.zeros((3, 2)), 1.4)
