"""Unit tests for the synthetic DBLP-like heterogeneous graph generator."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets import generate_dblp_like
from repro.datasets.dblp import CLASS_NAMES
from repro.exceptions import DatasetError


@pytest.fixture(scope="module")
def dataset():
    return generate_dblp_like(num_papers=300, num_authors=180, num_conferences=8,
                              num_terms=90, seed=0)


class TestDblpGenerator:
    def test_node_counts(self, dataset):
        assert dataset.graph.num_nodes == 300 + 180 + 8 + 90
        counts = dataset.describe()
        assert counts["paper"] == 300
        assert counts["conference"] == 8

    def test_labeled_fraction(self, dataset):
        expected = round(0.104 * dataset.graph.num_nodes)
        assert dataset.num_labeled == expected

    def test_every_paper_has_a_conference_and_authors(self, dataset):
        papers = np.nonzero(dataset.node_types == 0)[0]
        conference_ids = set(np.nonzero(dataset.node_types == 2)[0].tolist())
        author_ids = set(np.nonzero(dataset.node_types == 1)[0].tolist())
        for paper in papers[:50]:
            neighbors, _ = dataset.graph.neighbors(int(paper))
            neighbor_set = set(neighbors.tolist())
            assert neighbor_set & conference_ids
            assert neighbor_set & author_ids

    def test_non_paper_nodes_only_connect_to_papers(self, dataset):
        non_papers = np.nonzero(dataset.node_types != 0)[0]
        papers = set(np.nonzero(dataset.node_types == 0)[0].tolist())
        for node in non_papers[:100]:
            neighbors, _ = dataset.graph.neighbors(int(node))
            assert set(neighbors.tolist()) <= papers

    def test_explicit_beliefs_match_true_labels(self, dataset):
        labeled = np.nonzero(np.any(dataset.explicit != 0.0, axis=1))[0]
        for node in labeled[:100]:
            assert int(np.argmax(dataset.explicit[node])) == dataset.true_labels[node]

    def test_homophily_in_planted_structure(self, dataset):
        """Most paper-author edges connect nodes of the same research area."""
        papers = set(np.nonzero(dataset.node_types == 0)[0].tolist())
        same = 0
        total = 0
        for edge in dataset.graph.edges():
            if edge.source in papers or edge.target in papers:
                total += 1
                if dataset.true_labels[edge.source] == dataset.true_labels[edge.target]:
                    same += 1
        assert total > 0
        assert same / total > 0.6  # noise level is 0.15, so well above half

    def test_deterministic(self):
        a = generate_dblp_like(num_papers=100, num_authors=60, num_conferences=4,
                               num_terms=30, seed=3)
        b = generate_dblp_like(num_papers=100, num_authors=60, num_conferences=4,
                               num_terms=30, seed=3)
        assert a.graph == b.graph
        assert np.array_equal(a.true_labels, b.true_labels)

    def test_coupling_is_fig11a(self, dataset):
        assert dataset.coupling.num_classes == len(CLASS_NAMES)
        assert dataset.coupling.is_homophily()

    def test_invalid_parameters(self):
        with pytest.raises(DatasetError):
            generate_dblp_like(num_papers=2)
        with pytest.raises(DatasetError):
            generate_dblp_like(labeled_fraction=0.0)
        with pytest.raises(DatasetError):
            generate_dblp_like(noise=1.0)
