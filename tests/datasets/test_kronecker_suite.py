"""Unit tests for the Fig. 6a Kronecker workload suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets import PAPER_SUITE_SIZES, kronecker_suite
from repro.exceptions import DatasetError


class TestKroneckerSuite:
    def test_paper_sizes_constant(self):
        assert PAPER_SUITE_SIZES[0] == 243
        assert PAPER_SUITE_SIZES[-1] == 1_594_323
        assert all(PAPER_SUITE_SIZES[i + 1] == 3 * PAPER_SUITE_SIZES[i]
                   for i in range(len(PAPER_SUITE_SIZES) - 1))

    def test_workload_sizes_match_paper_nodes(self):
        suite = kronecker_suite(max_index=3, seed=0)
        assert [w.num_nodes for w in suite] == PAPER_SUITE_SIZES[:3]
        assert [w.index for w in suite] == [1, 2, 3]

    def test_explicit_fraction(self):
        suite = kronecker_suite(max_index=2, seed=0)
        for workload in suite:
            expected = round(0.05 * workload.num_nodes)
            assert workload.num_explicit == max(1, expected)

    def test_update_nodes_disjoint_from_explicit(self):
        workload = kronecker_suite(max_index=2, seed=0)[1]
        explicit_nodes = set(np.nonzero(np.any(workload.explicit != 0, axis=1))[0])
        update_nodes = set(np.nonzero(np.any(workload.explicit_update != 0, axis=1))[0])
        assert not explicit_nodes & update_nodes

    def test_describe_row(self):
        workload = kronecker_suite(max_index=1, seed=0)[0]
        description = workload.describe()
        assert description["index"] == 1
        assert description["nodes"] == 243
        assert description["edges"] == workload.graph.num_directed_edges
        assert description["explicit_5pct"] == workload.num_explicit

    def test_edges_grow_roughly_geometrically(self):
        suite = kronecker_suite(max_index=3, seed=0)
        assert suite[1].num_edges > 2.5 * suite[0].num_edges
        assert suite[2].num_edges > 2.5 * suite[1].num_edges

    def test_deterministic(self):
        first = kronecker_suite(max_index=2, seed=5)
        second = kronecker_suite(max_index=2, seed=5)
        assert first[1].graph == second[1].graph
        assert np.array_equal(first[1].explicit, second[1].explicit)

    def test_coupling_is_fig6b(self):
        workload = kronecker_suite(max_index=1)[0]
        assert np.allclose(workload.coupling.unscaled_residual * 100,
                           [[10, -4, -6], [-4, 7, -3], [-6, -3, 9]])

    def test_invalid_parameters(self):
        with pytest.raises(DatasetError):
            kronecker_suite(max_index=0)
        with pytest.raises(DatasetError):
            kronecker_suite(max_index=99)
        with pytest.raises(DatasetError):
            kronecker_suite(max_index=1, num_classes=4)
