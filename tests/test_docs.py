"""Documentation health: quickstart runs, links resolve, API is documented.

This wires ``scripts/check_docs.py`` into the regular test run so a broken
README snippet, a dangling intra-repo link, or an undocumented
``repro.service`` export fails CI, not just the optional script invocation.
"""

from __future__ import annotations

import importlib.util
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent


def _check_docs_module():
    spec = importlib.util.spec_from_file_location(
        "check_docs", ROOT / "scripts" / "check_docs.py")
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_required_documentation_exists():
    for relative in ("README.md", "docs/architecture.md",
                     "docs/performance.md", "docs/api.md",
                     "docs/observability.md"):
        assert (ROOT / relative).exists(), f"{relative} is missing"


def test_readme_quickstart_blocks_run():
    check_docs = _check_docs_module()
    errors = check_docs.run_quickstart(ROOT)
    assert errors == [], "\n".join(errors)


def test_intra_repo_doc_links_resolve():
    check_docs = _check_docs_module()
    dangling = check_docs.broken_links(ROOT)
    assert dangling == [], \
        "\n".join(f"{path}: ({target})" for path, target in dangling)


def test_every_service_export_is_documented():
    check_docs = _check_docs_module()
    missing = check_docs.undocumented_service_api(ROOT)
    assert missing == [], "\n".join(missing)


def test_metric_catalog_names_exist_in_registries():
    check_docs = _check_docs_module()
    unknown = check_docs.unknown_catalog_metrics(ROOT)
    assert unknown == [], "\n".join(unknown)


def test_check_docs_script_passes_end_to_end():
    check_docs = _check_docs_module()
    assert check_docs.main([str(ROOT)]) == 0
