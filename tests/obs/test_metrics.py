"""The metrics registry: counters, gauges, histograms, labels, switches."""

from __future__ import annotations

import pytest

from repro.obs import (
    DEFAULT_BUCKETS,
    REGISTRY,
    MetricsRegistry,
    counter,
    obs_enabled,
    set_obs_enabled,
)


@pytest.fixture
def registry():
    return MetricsRegistry()


class TestCounter:
    def test_starts_at_zero_and_accumulates(self, registry):
        c = registry.counter("t_requests_total", "help")
        assert c.value() == 0.0
        c.inc()
        c.inc(2.5)
        assert c.value() == 3.5

    def test_labels_are_independent_series(self, registry):
        c = registry.counter("t_by_graph_total")
        c.inc(graph="a")
        c.inc(graph="a")
        c.inc(graph="b")
        assert c.value(graph="a") == 2.0
        assert c.value(graph="b") == 1.0
        assert c.value(graph="missing") == 0.0
        assert c.value() == 3.0  # no labels = sum over series

    def test_label_order_does_not_matter(self, registry):
        c = registry.counter("t_two_labels_total")
        c.inc(graph="g", engine="batch")
        c.inc(engine="batch", graph="g")
        assert c.value(graph="g", engine="batch") == 2.0

    def test_rejects_negative_increment(self, registry):
        c = registry.counter("t_mono_total")
        with pytest.raises(ValueError):
            c.inc(-1.0)

    def test_get_or_create_returns_same_object(self, registry):
        first = registry.counter("t_shared_total", "first help wins")
        second = registry.counter("t_shared_total", "ignored")
        assert first is second
        assert first.help == "first help wins"

    def test_kind_conflict_raises(self, registry):
        registry.counter("t_kind")
        with pytest.raises(ValueError):
            registry.gauge("t_kind")


class TestGauge:
    def test_set_and_inc(self, registry):
        g = registry.gauge("t_version")
        g.set(3, graph="g")
        assert g.value(graph="g") == 3.0
        g.inc(-1, graph="g")  # gauges may go down
        assert g.value(graph="g") == 2.0


class TestHistogram:
    def test_observations_land_in_buckets(self, registry):
        h = registry.histogram("t_seconds", buckets=[0.01, 0.1, 1.0])
        h.observe(0.005)
        h.observe(0.05)
        h.observe(5.0)  # above every bound: only count/sum, no bucket
        assert h.count() == 3
        assert h.sum_value() == pytest.approx(5.055)
        ((labels, series),) = h.labeled_values()
        assert labels == {}
        assert series.bucket_counts == [1, 1, 0]

    def test_default_buckets_are_sorted(self, registry):
        h = registry.histogram("t_default_seconds")
        assert h.buckets == tuple(sorted(DEFAULT_BUCKETS))

    def test_labelled_series(self, registry):
        h = registry.histogram("t_by_span_seconds", buckets=[1.0])
        h.observe(0.5, span="a")
        h.observe(0.5, span="b")
        assert h.count(span="a") == 1
        assert h.count() == 2


class TestRegistry:
    def test_names_sorted_and_reset_keeps_definitions(self, registry):
        registry.counter("t_b_total")
        registry.counter("t_a_total").inc()
        assert registry.names() == ["t_a_total", "t_b_total"]
        registry.reset()
        assert registry.names() == ["t_a_total", "t_b_total"]
        assert registry.counter("t_a_total").value() == 0.0

    def test_snapshot_is_json_safe(self, registry):
        import json

        registry.counter("t_c_total").inc(graph="g")
        registry.histogram("t_h_seconds", buckets=[1.0]).observe(0.5)
        snapshot = registry.snapshot()
        round_tripped = json.loads(json.dumps(snapshot))
        assert round_tripped["t_c_total"]["series"] == [
            {"labels": {"graph": "g"}, "value": 1.0}]
        assert round_tripped["t_h_seconds"]["buckets"] == [1.0]
        assert round_tripped["t_h_seconds"]["series"][0]["count"] == 1


class TestEnabledSwitch:
    def test_disabled_registry_drops_writes(self):
        registry = MetricsRegistry()
        c = registry.counter("t_switch_total")
        assert obs_enabled()
        try:
            set_obs_enabled(False)
            c.inc()
            assert c.value() == 0.0
        finally:
            set_obs_enabled(True)
        c.inc()
        assert c.value() == 1.0

    def test_always_on_registry_ignores_the_switch(self):
        registry = MetricsRegistry(always_on=True)
        c = registry.counter("t_contract_total")
        try:
            set_obs_enabled(False)
            c.inc()
        finally:
            set_obs_enabled(True)
        assert c.value() == 1.0

    def test_module_helpers_use_the_global_registry(self):
        c = counter("t_global_total")
        assert REGISTRY.get("t_global_total") is c
