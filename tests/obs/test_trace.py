"""Tracing spans: sinks, tags, the disabled no-op, the duration histogram."""

from __future__ import annotations

import io
import json

import pytest

from repro.obs import (
    JsonLinesSink,
    RingBufferSink,
    StderrSink,
    add_sink,
    default_ring,
    remove_sink,
    set_obs_enabled,
    span,
)
from repro.obs.trace import _NOOP, SPAN_SECONDS


@pytest.fixture
def sink():
    """A private ring buffer registered for the duration of one test."""
    sink = RingBufferSink(capacity=16)
    add_sink(sink)
    yield sink
    remove_sink(sink)


class TestSpan:
    def test_emits_event_with_tags(self, sink):
        with span("test.op", graph="g") as s:
            s.set_tag("residual", 0.5)
        (event,) = sink.events()
        assert event.name == "test.op"
        assert event.tags == {"graph": "g", "residual": 0.5}
        assert event.duration >= 0.0

    def test_exception_adds_error_tag_and_propagates(self, sink):
        with pytest.raises(RuntimeError):
            with span("test.boom"):
                raise RuntimeError("boom")
        (event,) = sink.events()
        assert event.tags["error"] == "RuntimeError"

    def test_observes_duration_histogram(self, sink):
        before = SPAN_SECONDS.count(span="test.timed")
        with span("test.timed"):
            pass
        assert SPAN_SECONDS.count(span="test.timed") == before + 1

    def test_disabled_returns_shared_noop(self):
        try:
            set_obs_enabled(False)
            s = span("test.off", graph="g")
            assert s is _NOOP
            with s as inner:
                inner.set_tag("ignored", 1)  # must not raise
        finally:
            set_obs_enabled(True)

    def test_default_ring_always_receives(self):
        # The ring may already be at capacity (a long test run fills it),
        # so check the newest event rather than the length.
        with span("test.ring.receives"):
            pass
        newest = default_ring().events()[-1]
        assert newest.name == "test.ring.receives"


class TestSinks:
    def test_ring_buffer_is_bounded(self):
        sink = RingBufferSink(capacity=3)
        add_sink(sink)
        try:
            for index in range(5):
                with span("test.bounded", index=index):
                    pass
        finally:
            remove_sink(sink)
        events = sink.events()
        assert len(events) == 3
        assert [event.tags["index"] for event in events] == [2, 3, 4]

    def test_json_lines_sink_round_trips(self, tmp_path):
        path = tmp_path / "spans.jsonl"
        sink = JsonLinesSink(str(path))
        add_sink(sink)
        try:
            with span("test.jsonl", graph="g"):
                pass
        finally:
            remove_sink(sink)
            sink.close()
        (line,) = path.read_text().splitlines()
        record = json.loads(line)
        assert record["span"] == "test.jsonl"
        assert record["tags"] == {"graph": "g"}
        assert record["duration_seconds"] >= 0.0

    def test_stderr_sink_writes_one_line(self):
        stream = io.StringIO()
        sink = StderrSink(stream)
        add_sink(sink)
        try:
            with span("test.stderr", graph="g"):
                pass
        finally:
            remove_sink(sink)
        out = stream.getvalue()
        assert out.startswith("[span] test.stderr ")
        assert "graph=g" in out

    def test_remove_sink_tolerates_absent(self):
        remove_sink(object())  # no-op, must not raise


class TestInstrumentationEmits:
    def test_engine_sweep_spans_reach_the_ring(self, sink,
                                               binary_chain_workload):
        from repro.engine import get_plan, run_batch

        graph, coupling, explicit = binary_chain_workload
        plan = get_plan(graph, coupling)
        run_batch(plan, [explicit])
        names = {event.name for event in sink.events()}
        assert "engine.sweep" in names
