"""Prometheus text exposition and the /metrics HTTP endpoint."""

from __future__ import annotations

import urllib.error
import urllib.request

from repro.obs import (
    MetricsRegistry,
    render_prometheus,
    start_metrics_server,
)
from repro.obs.exporter import CONTENT_TYPE


def _registry_with_samples() -> MetricsRegistry:
    registry = MetricsRegistry()
    registry.counter("x_requests_total", "Requests.").inc(3, graph="g")
    registry.gauge("x_version", "Version.").set(2)
    registry.histogram("x_seconds", "Latency.",
                       buckets=[0.1, 1.0]).observe(0.05)
    registry.counter("x_unhit_total", "Never incremented.")
    return registry


class TestRender:
    def test_headers_and_samples(self):
        text = render_prometheus([_registry_with_samples()])
        lines = text.splitlines()
        assert "# HELP x_requests_total Requests." in lines
        assert "# TYPE x_requests_total counter" in lines
        assert 'x_requests_total{graph="g"} 3' in lines
        assert "# TYPE x_version gauge" in lines
        assert "x_version 2" in lines

    def test_histogram_expansion_is_cumulative(self):
        text = render_prometheus([_registry_with_samples()])
        lines = text.splitlines()
        assert 'x_seconds_bucket{le="0.1"} 1' in lines
        assert 'x_seconds_bucket{le="1.0"} 1' in lines
        assert 'x_seconds_bucket{le="+Inf"} 1' in lines
        assert "x_seconds_sum 0.05" in lines
        assert "x_seconds_count 1" in lines

    def test_registered_but_unhit_metric_exposes_zero(self):
        text = render_prometheus([_registry_with_samples()])
        assert "x_unhit_total 0" in text.splitlines()

    def test_label_values_are_escaped(self):
        registry = MetricsRegistry()
        registry.counter("x_esc_total").inc(name='a"b\\c\nd')
        text = render_prometheus([registry])
        assert r'x_esc_total{name="a\"b\\c\nd"} 1' in text.splitlines()

    def test_multiple_registries_concatenate(self):
        first = MetricsRegistry()
        first.counter("x_one_total").inc()
        second = MetricsRegistry()
        second.counter("x_two_total").inc(2)
        lines = render_prometheus([first, second]).splitlines()
        assert "x_one_total 1" in lines
        assert "x_two_total 2" in lines

    def test_default_is_the_global_registry(self):
        from repro.obs import counter

        counter("repro_engine_sweeps_total")
        assert "repro_engine_sweeps_total" in render_prometheus()


class TestHTTPServer:
    def test_scrape_round_trip(self):
        server = start_metrics_server(0, registries=[
            _registry_with_samples()])
        try:
            url = f"http://127.0.0.1:{server.port}/metrics"
            with urllib.request.urlopen(url, timeout=5) as response:
                assert response.status == 200
                assert response.headers["Content-Type"] == CONTENT_TYPE
                body = response.read().decode("utf-8")
            assert 'x_requests_total{graph="g"} 3' in body
        finally:
            server.stop()

    def test_unknown_path_is_404(self):
        server = start_metrics_server(0, registries=[MetricsRegistry()])
        try:
            url = f"http://127.0.0.1:{server.port}/nope"
            try:
                urllib.request.urlopen(url, timeout=5)
                raise AssertionError("expected HTTP 404")
            except urllib.error.HTTPError as error:
                assert error.code == 404
        finally:
            server.stop()
