"""Thread-safety hammer: concurrent writers against a rendering reader.

The registry's contract is *exact* totals under concurrency — these are
the counters ``PropagationService.stats()`` reports, so a lost update is
a wrong answer, not just noisy telemetry.  N writer threads hammer one
counter, one gauge and one histogram (labelled and unlabelled series)
while a reader renders the registry to Prometheus text in a loop; at the
end every total must match the exact arithmetic sum of what the writers
did.
"""

from __future__ import annotations

import threading

from repro.obs import MetricsRegistry, render_prometheus

WRITERS = 8
ITERATIONS = 2000


def test_exact_totals_under_concurrent_writers_and_reader():
    registry = MetricsRegistry()
    counter = registry.counter("hammer_total", "Hammered counter.")
    gauge = registry.gauge("hammer_gauge", "Hammered gauge.")
    hist = registry.histogram("hammer_seconds", "Hammered histogram.",
                              buckets=[0.5, 1.0])
    start = threading.Barrier(WRITERS + 1)
    stop_reading = threading.Event()
    reader_error: list = []

    def writer(worker: int) -> None:
        start.wait()
        for i in range(ITERATIONS):
            counter.inc()
            counter.inc(2, worker=worker)
            gauge.inc(1)
            hist.observe(0.25 if i % 2 == 0 else 0.75, worker=worker)

    def reader() -> None:
        start.wait()
        try:
            while not stop_reading.is_set():
                text = render_prometheus([registry])
                # The render must always be internally consistent.
                assert "hammer_total" in text
        except BaseException as exc:  # pragma: no cover - failure path
            reader_error.append(exc)

    threads = [threading.Thread(target=writer, args=(w,))
               for w in range(WRITERS)]
    reading = threading.Thread(target=reader)
    for thread in threads:
        thread.start()
    reading.start()
    for thread in threads:
        thread.join()
    stop_reading.set()
    reading.join()

    assert not reader_error
    # Exact to the unit: no lost update under WRITERS concurrent threads.
    assert counter.value() == WRITERS * ITERATIONS * 3
    for worker in range(WRITERS):
        assert counter.value(worker=worker) == ITERATIONS * 2
    assert gauge.value() == WRITERS * ITERATIONS
    assert hist.count() == WRITERS * ITERATIONS
    for worker in range(WRITERS):
        ((_, series),) = [
            item for item in hist.labeled_values()
            if item[0] == {"worker": str(worker)}]
        assert series.bucket_counts == [ITERATIONS // 2, ITERATIONS // 2]


def test_metric_creation_race_returns_one_object():
    registry = MetricsRegistry()
    results: list = []
    start = threading.Barrier(WRITERS)

    def create() -> None:
        start.wait()
        results.append(registry.counter("race_total"))

    threads = [threading.Thread(target=create) for _ in range(WRITERS)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert len(results) == WRITERS
    assert all(metric is results[0] for metric in results)
