"""Force telemetry on for the obs suite.

These tests exercise the telemetry layer itself, so they must run the
*enabled* code paths even when the surrounding environment sets
``REPRO_OBS_DISABLED=1`` (CI runs the whole tier-1 suite that way to
prove the rest of the tree is telemetry-independent).  Tests that check
disabled behaviour flip the switch themselves inside try/finally.
"""

from __future__ import annotations

import pytest

from repro.obs import obs_enabled, set_obs_enabled


@pytest.fixture(autouse=True)
def _telemetry_enabled():
    was_enabled = obs_enabled()
    set_obs_enabled(True)
    yield
    set_obs_enabled(was_enabled)
