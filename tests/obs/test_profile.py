"""Convergence profiles: residual trajectories next to the Lemma 8 radius."""

from __future__ import annotations

import pytest

from repro.engine import get_plan, run_batch, run_sbp_batch
from repro.obs.profile import _tail_rate


class TestBatchProfile:
    def test_profile_rides_in_result_extra(self, binary_chain_workload):
        graph, coupling, explicit = binary_chain_workload
        plan = get_plan(graph, coupling)
        (result,) = run_batch(plan, [explicit], profile=True)
        profile = result.extra["profile"]
        assert profile["engine"] == "batch"
        assert profile["iterations"] == result.iterations
        assert profile["converged"] is True
        assert len(profile["residuals"]) >= 1
        assert profile["spectral_radius"] == pytest.approx(
            plan.update_spectral_radius())
        assert profile["exactly_convergent"] is True

    def test_geometric_rate_tracks_the_radius(self, binary_chain_workload):
        graph, coupling, explicit = binary_chain_workload
        plan = get_plan(graph, coupling)
        (result,) = run_batch(plan, [explicit], profile=True)
        profile = result.extra["profile"]
        # Geometric decay at roughly rho per sweep (Lemma 8): the observed
        # tail ratio may only undershoot the exact radius, never exceed a
        # loose ceiling above it.
        assert 0.0 < profile["geometric_rate"] <= \
            profile["spectral_radius"] * 1.5 + 1e-9

    def test_profile_off_by_default(self, binary_chain_workload):
        graph, coupling, explicit = binary_chain_workload
        plan = get_plan(graph, coupling)
        (result,) = run_batch(plan, [explicit])
        assert "profile" not in result.extra

    def test_residual_trajectory_is_decreasing_at_the_tail(
            self, binary_chain_workload):
        graph, coupling, explicit = binary_chain_workload
        plan = get_plan(graph, coupling)
        (result,) = run_batch(plan, [explicit], profile=True)
        residuals = result.extra["profile"]["residuals"]
        assert residuals[-1] <= residuals[0]
        assert residuals[-1] <= result.extra["profile"]["tolerance"]


class TestSbpProfile:
    def test_records_traversal_shape(self, sbp_example, fraud_coupling,
                                     torus_explicit):
        explicit = torus_explicit[: sbp_example.num_nodes]
        (result,) = run_sbp_batch(sbp_example, fraud_coupling, [explicit],
                                  profile=True)
        profile = result.extra["profile"]
        assert profile["engine"] == "sbp"
        assert profile["converged"] is True
        assert profile["residuals"] == []
        assert profile["max_level"] >= 1
        assert profile["max_width"] >= 1
        assert profile["edges_touched"] >= 1
        assert profile["labeled_nodes"] == 3

    def test_profile_off_by_default(self, sbp_example, fraud_coupling,
                                    torus_explicit):
        explicit = torus_explicit[: sbp_example.num_nodes]
        (result,) = run_sbp_batch(sbp_example, fraud_coupling, [explicit])
        assert "profile" not in result.extra


class TestTailRate:
    def test_exact_geometric_sequence(self):
        assert _tail_rate([1.0, 0.5, 0.25, 0.125]) == pytest.approx(0.5)

    def test_skips_zero_denominators(self):
        # The (0.0 -> 0.0) pair is skipped; the (1.0 -> 0.0) drop counts.
        assert _tail_rate([1.0, 0.0, 0.0]) == 0.0
        assert _tail_rate([0.0, 0.0, 0.0]) is None

    def test_too_short_yields_none(self):
        assert _tail_rate([1.0]) is None
        assert _tail_rate([]) is None
