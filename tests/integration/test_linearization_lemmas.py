"""Integration tests for the linearization itself (Lemmas 5 and 6, Theorem 4).

These tests validate the *derivation* of LinBP, not just its final output:
in the small-residual regime the converged BP messages and beliefs must
satisfy the centered equations the paper derives before arriving at the
matrix form.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.coupling import fraud_matrix, synthetic_residual_matrix
from repro.core import belief_propagation, linbp
from repro.graphs import random_graph, torus_graph


@pytest.fixture(scope="module")
def converged_bp_run():
    """A converged BP run with small residuals, with messages exposed."""
    graph = torus_graph()
    coupling = fraud_matrix(epsilon=0.02)
    explicit = np.zeros((8, 3))
    explicit[0] = [0.02, -0.01, -0.01]
    explicit[1] = [-0.01, 0.02, -0.01]
    explicit[2] = [-0.01, -0.01, 0.02]
    result = belief_propagation(graph, coupling, explicit, max_iterations=500,
                                tolerance=1e-14, return_messages=True)
    return graph, coupling, explicit, result


class TestMessageCentering:
    def test_messages_centered_around_one(self, converged_bp_run):
        """Eq. 3's normalisation keeps every message vector summing to k."""
        _, coupling, _, result = converged_bp_run
        messages = result.extra["messages"]
        k = coupling.num_classes
        assert np.allclose(messages.sum(axis=1), k, atol=1e-9)
        # Small-residual regime: messages stay near the all-ones vector.
        assert np.max(np.abs(messages - 1.0)) < 0.1


class TestLemma5:
    def test_centered_belief_equation(self, converged_bp_run):
        """b̂_s ≈ ê_s + (1/k) Σ_u m̂_us at the BP fixed point (Eq. 8)."""
        graph, coupling, explicit, result = converged_bp_run
        messages = result.extra["messages"]
        targets = result.extra["message_targets"]
        k = coupling.num_classes
        residual_messages = messages - 1.0
        incoming_sum = np.zeros((graph.num_nodes, k))
        np.add.at(incoming_sum, targets, residual_messages)
        predicted = explicit + incoming_sum / k
        assert np.max(np.abs(predicted - result.beliefs)) < 5e-3


class TestLemma6:
    def test_steady_state_message_equation(self, converged_bp_run):
        """m̂_st ≈ k (I − Ĥ²)⁻¹ Ĥ (b̂_s − Ĥ b̂_t) at the BP fixed point (Eq. 10)."""
        graph, coupling, explicit, result = converged_bp_run
        messages = result.extra["messages"]
        sources = result.extra["message_sources"]
        targets = result.extra["message_targets"]
        residual = coupling.residual
        k = coupling.num_classes
        transform = k * np.linalg.inv(np.eye(k) - residual @ residual) @ residual
        beliefs = result.beliefs
        predicted = (beliefs[sources] - beliefs[targets] @ residual.T) @ transform.T
        observed = messages - 1.0
        # Residuals are O(1e-3); the linearization drops O(residual^2) terms,
        # so agreement to a few percent of the residual scale is expected.
        scale = max(np.max(np.abs(observed)), 1e-12)
        assert np.max(np.abs(predicted - observed)) < 0.05 * scale + 1e-6


class TestTheorem4:
    def test_linbp_matches_bp_to_second_order(self):
        """The LinBP fixed point approaches BP quadratically as residuals shrink.

        Theorem 4 is a first-order approximation, so halving the residual
        scale should shrink the (BP − LinBP) gap by roughly 4x.
        """
        graph = random_graph(40, 0.12, seed=3)
        coupling = synthetic_residual_matrix()
        rng = np.random.default_rng(0)
        explicit = np.zeros((40, 3))
        for node in rng.choice(40, size=6, replace=False):
            values = rng.uniform(-0.05, 0.05, size=2)
            explicit[node] = [values[0], values[1], -values.sum()]
        gaps = []
        for epsilon in (0.04, 0.02, 0.01):
            scaled = coupling.scaled(epsilon)
            scaled_explicit = explicit * (epsilon / 0.04)
            bp_result = belief_propagation(graph, scaled, scaled_explicit,
                                           max_iterations=500, tolerance=1e-14)
            linbp_result = linbp(graph, scaled, scaled_explicit,
                                 max_iterations=500, tolerance=1e-14)
            gap = np.max(np.abs(bp_result.beliefs - linbp_result.beliefs))
            scale = max(np.max(np.abs(bp_result.beliefs)), 1e-300)
            gaps.append(gap / scale)
        # The relative gap shrinks markedly (roughly linearly or better in the
        # residual scale) as the linearization regime is approached.
        assert gaps[1] < 0.6 * gaps[0]
        assert gaps[2] < 0.6 * gaps[1]
