"""Cross-implementation consistency: matrix vs relational, iterative vs closed form.

These are the end-to-end guarantees the library rests on: every implementation
of the same semantics must produce the same numbers, on non-trivial random
workloads, including after incremental updates.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.coupling import synthetic_residual_matrix
from repro.core import SBP, linbp, linbp_closed_form, sbp
from repro.datasets import sample_explicit_beliefs, sample_explicit_nodes
from repro.graphs import random_graph
from repro.relational import (
    RelationalSBP,
    add_edges_sql,
    add_explicit_beliefs_sql,
    linbp_sql,
    sbp_sql,
)


@pytest.fixture(scope="module", params=[0, 1])
def workload(request):
    """Two random workloads (different seeds, one weighted one not)."""
    seed = request.param
    weighted = seed == 1
    graph = random_graph(60, 0.08, seed=seed, weighted=weighted)
    nodes = sample_explicit_nodes(graph.num_nodes, 0.1, seed=seed + 50)
    explicit = sample_explicit_beliefs(graph.num_nodes, 3, nodes, seed=seed + 60)
    coupling = synthetic_residual_matrix(epsilon=0.3)
    return graph, coupling, explicit


class TestLinBPImplementations:
    def test_iterative_equals_closed_form(self, workload):
        graph, coupling, explicit = workload
        iterative = linbp(graph, coupling, explicit, max_iterations=500,
                          tolerance=1e-13)
        closed = linbp_closed_form(graph, coupling, explicit)
        assert iterative.converged
        assert np.allclose(iterative.beliefs, closed.beliefs, atol=1e-9)

    def test_relational_equals_closed_form(self, workload):
        graph, coupling, explicit = workload
        relational = linbp_sql(graph, coupling, explicit, num_iterations=300,
                               tolerance=1e-13)
        closed = linbp_closed_form(graph, coupling, explicit)
        assert np.allclose(relational.beliefs, closed.beliefs, atol=1e-8)

    def test_relational_star_equals_closed_form(self, workload):
        graph, coupling, explicit = workload
        relational = linbp_sql(graph, coupling, explicit, num_iterations=300,
                               tolerance=1e-13, echo_cancellation=False)
        closed = linbp_closed_form(graph, coupling, explicit,
                                   echo_cancellation=False)
        assert np.allclose(relational.beliefs, closed.beliefs, atol=1e-8)


class TestSBPImplementations:
    def test_matrix_equals_relational(self, workload):
        graph, coupling, explicit = workload
        matrix_result = sbp(graph, coupling, explicit)
        relational_result = sbp_sql(graph, coupling, explicit)
        assert np.allclose(matrix_result.beliefs, relational_result.beliefs,
                           atol=1e-10)
        assert np.array_equal(matrix_result.extra["geodesic_numbers"],
                              relational_result.extra["geodesic_numbers"])

    def test_incremental_beliefs_all_engines_agree(self, workload):
        graph, coupling, explicit = workload
        labeled = np.nonzero(np.any(explicit != 0.0, axis=1))[0]
        add = labeled[::2]
        initial = explicit.copy()
        initial[add] = 0.0
        update = np.zeros_like(explicit)
        update[add] = explicit[add]
        scratch = sbp(graph, coupling, explicit)

        memory_runner = SBP(graph, coupling)
        memory_runner.run(initial)
        memory_result = memory_runner.add_explicit_beliefs(update)

        relational_runner = RelationalSBP(graph, coupling)
        relational_runner.run(initial)
        relational_result = add_explicit_beliefs_sql(relational_runner, update)

        assert np.allclose(memory_result.beliefs, scratch.beliefs, atol=1e-10)
        assert np.allclose(relational_result.beliefs, scratch.beliefs, atol=1e-10)

    def test_incremental_edges_all_engines_agree(self, workload):
        graph, coupling, explicit = workload
        rng = np.random.default_rng(99)
        new_edges = []
        while len(new_edges) < 8:
            source, target = rng.integers(0, graph.num_nodes, size=2)
            if source != target and not graph.has_edge(int(source), int(target)):
                new_edges.append((int(source), int(target), 1.0))
        extended = graph.with_edges_added(new_edges)
        scratch = sbp(extended, coupling, explicit)

        memory_runner = SBP(graph, coupling)
        memory_runner.run(explicit)
        memory_result = memory_runner.add_edges(new_edges)

        relational_runner = RelationalSBP(graph, coupling)
        relational_runner.run(explicit)
        relational_result = add_edges_sql(relational_runner, new_edges)

        assert np.allclose(memory_result.beliefs, scratch.beliefs, atol=1e-10)
        assert np.allclose(relational_result.beliefs, scratch.beliefs, atol=1e-10)


class TestTheorem19OnRandomGraphs:
    def test_linbp_standardized_beliefs_approach_sbp(self, workload):
        """Theorem 19: standardized LinBP → standardized SBP as ε_H → 0."""
        graph, coupling, explicit = workload
        sbp_std = sbp(graph, coupling, explicit).standardized_beliefs()
        deviations = []
        for epsilon in (1e-2, 1e-3, 1e-4):
            result = linbp(graph, coupling.scaled(epsilon), explicit,
                           max_iterations=300)
            lin_std = result.standardized_beliefs()
            # Only compare nodes that SBP reaches (others stay zero everywhere).
            reached = np.any(sbp_std != 0.0, axis=1)
            deviations.append(np.max(np.abs(lin_std[reached] - sbp_std[reached])))
        assert deviations[1] < deviations[0]
        assert deviations[2] < 0.05
