"""Golden regression fixtures: every engine against committed expected output.

``tests/fixtures/golden/*.json`` holds small deterministic problems with
their expected final beliefs, iteration counts and convergence flags, as
computed by the in-memory engines when the fixture was recorded.  One
parametrized test runs *every* execution path — the batched engine, the
sharded block engine, the pure-Python relational backend, the SQLite
backend, and DuckDB when installed — against the same fixture.  Any future
engine divergence, however subtle, fails here first.

Regenerate a fixture only for an intentional semantic change, by re-running
the engines and committing the new JSON alongside the change that explains
it.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np
import pytest

from repro.coupling.matrices import CouplingMatrix
from repro.engine.batch import run_batch
from repro.engine.plan import get_plan
from repro.engine.sbp_plan import run_sbp_batch
from repro.graphs import Graph
from repro.relational.backends import BACKENDS, get_backend

GOLDEN_DIR = Path(__file__).resolve().parent.parent / "fixtures" / "golden"
FIXTURE_PATHS = sorted(GOLDEN_DIR.glob("*.json"))

TOLERANCE = 1e-10

needs_duckdb = pytest.mark.skipif(not BACKENDS["duckdb"].is_available(),
                                  reason="duckdb is not installed")


@pytest.fixture(params=FIXTURE_PATHS, ids=lambda path: path.stem)
def golden(request):
    """One parsed golden fixture: problem inputs plus expected outputs."""
    data = json.loads(request.param.read_text())
    graph = Graph.from_edges([tuple(edge) for edge in data["edges"]],
                             num_nodes=data["num_nodes"])
    coupling = CouplingMatrix.from_stochastic(
        np.asarray(data["coupling_stochastic"], dtype=float),
        epsilon=data["epsilon"])
    explicit = np.zeros((data["num_nodes"], coupling.num_classes))
    for node, row in data["explicit"]:
        explicit[node] = row
    return {"graph": graph, "coupling": coupling, "explicit": explicit,
            "data": data}


def test_fixtures_exist():
    assert FIXTURE_PATHS, f"no golden fixtures found under {GOLDEN_DIR}"


# ---------------------------------------------------------------------- #
# LinBP / LinBP* across every engine
# ---------------------------------------------------------------------- #
def _run_batch_engine(golden, echo):
    plan = get_plan(golden["graph"], golden["coupling"],
                    echo_cancellation=echo)
    return run_batch(plan, [golden["explicit"]],
                     max_iterations=golden["data"]["max_iterations"],
                     tolerance=golden["data"]["tolerance"])[0]


def _run_sharded_engine(golden, echo):
    from repro import shard

    partition = shard.partition_graph(golden["graph"], 2, method="bfs")
    plan = shard.get_sharded_plan(partition, golden["coupling"],
                                  echo_cancellation=echo)
    return shard.run_sharded_batch(
        plan, [golden["explicit"]],
        max_iterations=golden["data"]["max_iterations"],
        tolerance=golden["data"]["tolerance"])[0]


def _run_backend_engine(name):
    def runner(golden, echo):
        with get_backend(name) as backend:
            backend.load_graph(golden["graph"], golden["coupling"],
                               golden["explicit"])
            return backend.run_linbp(
                max_iterations=golden["data"]["max_iterations"],
                tolerance=golden["data"]["tolerance"],
                echo_cancellation=echo)
    return runner


LINBP_ENGINES = {
    "batch": _run_batch_engine,
    "sharded": _run_sharded_engine,
    "relational-python": _run_backend_engine("python"),
    "sqlite": _run_backend_engine("sqlite"),
    "duckdb": _run_backend_engine("duckdb"),
}

ENGINE_PARAMS = [
    pytest.param(name, marks=(needs_duckdb,) if name == "duckdb" else ())
    for name in LINBP_ENGINES
]


@pytest.mark.parametrize("engine", ENGINE_PARAMS)
@pytest.mark.parametrize("variant", ["linbp", "linbp_star"])
def test_linbp_golden(golden, engine, variant):
    expected = golden["data"][variant]
    result = LINBP_ENGINES[engine](golden, echo=(variant == "linbp"))
    np.testing.assert_allclose(result.beliefs,
                               np.asarray(expected["beliefs"]),
                               rtol=0, atol=TOLERANCE)
    assert result.iterations == expected["iterations"], \
        f"{engine} took {result.iterations} iterations, " \
        f"expected {expected['iterations']}"
    assert result.converged == expected["converged"]


# ---------------------------------------------------------------------- #
# SBP across every engine that implements it
# ---------------------------------------------------------------------- #
def _run_sbp_batch_engine(golden):
    return run_sbp_batch(golden["graph"], golden["coupling"],
                         [golden["explicit"]])[0]


def _run_sbp_backend(name):
    def runner(golden):
        with get_backend(name) as backend:
            backend.load_graph(golden["graph"], golden["coupling"],
                               golden["explicit"])
            return backend.run_sbp()
    return runner


SBP_ENGINES = {
    "batch": _run_sbp_batch_engine,
    "relational-python": _run_sbp_backend("python"),
    "sqlite": _run_sbp_backend("sqlite"),
    "duckdb": _run_sbp_backend("duckdb"),
}


@pytest.mark.parametrize(
    "engine",
    [pytest.param(name, marks=(needs_duckdb,) if name == "duckdb" else ())
     for name in SBP_ENGINES])
def test_sbp_golden(golden, engine):
    expected = golden["data"]["sbp"]
    result = SBP_ENGINES[engine](golden)
    np.testing.assert_allclose(result.beliefs,
                               np.asarray(expected["beliefs"]),
                               rtol=0, atol=TOLERANCE)
    assert result.iterations == expected["iterations"]
    assert result.converged is True
    assert list(result.extra["geodesic_numbers"]) == \
        expected["geodesic_numbers"]
