"""Integration tests reproducing the worked examples of the paper end-to-end."""

from __future__ import annotations

import numpy as np
import pytest

from repro.beliefs import standardize
from repro.coupling import fraud_matrix
from repro.core import belief_propagation, linbp, linbp_star, sbp
from repro.experiments import torus_reference_values, torus_workload
from repro.graphs import geodesic_numbers, sbp_example_graph, torus_graph


class TestExample16And18:
    """The 7-node graph of Fig. 5: geodesic semantics and SBP assignment."""

    def test_three_shortest_paths_drive_v1(self):
        graph = sbp_example_graph()
        coupling = fraud_matrix()
        explicit = np.zeros((7, 3))
        explicit[1] = [0.2, -0.1, -0.1]   # v2
        explicit[6] = [-0.1, -0.1, 0.2]   # v7
        result = sbp(graph, coupling, explicit)
        expected = standardize(
            coupling.unscaled_residual @ coupling.unscaled_residual
            @ (2.0 * explicit[1] + explicit[6]))
        assert np.allclose(result.standardized_beliefs()[0], expected, atol=1e-10)
        assert result.extra["geodesic_numbers"][0] == 2


class TestExample20:
    """The full quantitative content of Example 20 / Fig. 4."""

    def test_every_quoted_number(self):
        reference = torus_reference_values()
        assert reference["rho_adjacency"] == pytest.approx(2.414, abs=1e-3)
        assert reference["rho_coupling_unscaled"] == pytest.approx(0.629, abs=1e-3)
        assert reference["exact_threshold_linbp"] == pytest.approx(0.488, abs=2e-3)
        assert reference["exact_threshold_linbp_star"] == pytest.approx(0.658, abs=2e-3)
        assert reference["sufficient_threshold_linbp"] == pytest.approx(0.360, abs=2e-3)
        assert reference["sufficient_threshold_linbp_star"] == pytest.approx(0.455,
                                                                             abs=2e-3)
        assert np.allclose(reference["sbp_standardized_v4"],
                           [-0.069, 1.258, -1.189], atol=1e-3)
        assert reference["sigma_slope"] == pytest.approx(0.332, abs=1e-3)

    def test_all_methods_converge_to_sbp_in_the_limit(self):
        """Theorem 19 on the torus: standardized LinBP → standardized SBP."""
        graph, coupling, explicit = torus_workload()
        sbp_reference = sbp(graph, coupling, explicit).standardized_beliefs()
        for epsilon in (0.05, 0.01, 0.002):
            scaled = coupling.scaled(epsilon)
            linbp_std = linbp(graph, scaled, explicit,
                              max_iterations=500).standardized_beliefs()
            deviation = np.max(np.abs(linbp_std - sbp_reference))
            assert deviation < 10 * epsilon  # error shrinks linearly with epsilon

    def test_methods_agree_on_top_labels_in_convergent_regime(self):
        graph, coupling, explicit = torus_workload()
        scaled = coupling.scaled(0.1)
        bp_labels = belief_propagation(graph, scaled, explicit).hard_labels()
        linbp_labels = linbp(graph, scaled, explicit).hard_labels()
        star_labels = linbp_star(graph, scaled, explicit).hard_labels()
        sbp_labels = sbp(graph, scaled, explicit).hard_labels()
        assert np.array_equal(bp_labels, linbp_labels)
        assert np.array_equal(bp_labels, star_labels)
        assert np.array_equal(bp_labels, sbp_labels)

    def test_geodesic_structure(self):
        graph = torus_graph()
        numbers = geodesic_numbers(graph, [0, 1, 2])
        assert numbers.tolist() == [0, 0, 0, 3, 1, 1, 1, 2]
