"""Shared fixtures: small graphs, couplings and belief matrices used across tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro.beliefs import BeliefMatrix
from repro.coupling import fraud_matrix, homophily_matrix, synthetic_residual_matrix
from repro.graphs import (
    chain_graph,
    random_graph,
    sbp_example_graph,
    torus_graph,
)


@pytest.fixture
def torus():
    """The 8-node Example 20 torus graph."""
    return torus_graph()


@pytest.fixture
def torus_explicit():
    """Example 20 explicit beliefs on v1, v2, v3 (scaled by 0.1)."""
    explicit = np.zeros((8, 3))
    explicit[0] = [2.0, -1.0, -1.0]
    explicit[1] = [-1.0, 2.0, -1.0]
    explicit[2] = [-1.0, -1.0, 2.0]
    return explicit * 0.1


@pytest.fixture
def fraud_coupling():
    """The Fig. 1c coupling matrix at a convergent scale."""
    return fraud_matrix(epsilon=0.1)


@pytest.fixture
def sbp_example():
    """The 7-node Fig. 5a/b example graph."""
    return sbp_example_graph()


@pytest.fixture
def small_random_graph():
    """A small connected-ish random graph used by equivalence tests."""
    return random_graph(40, 0.12, seed=7)


@pytest.fixture
def small_random_workload(small_random_graph):
    """Graph, coupling and explicit beliefs for cross-implementation tests."""
    coupling = synthetic_residual_matrix(epsilon=0.5)
    rng = np.random.default_rng(11)
    explicit = np.zeros((small_random_graph.num_nodes, 3))
    for node in rng.choice(small_random_graph.num_nodes, size=6, replace=False):
        values = rng.uniform(-0.1, 0.1, size=2)
        explicit[node] = [values[0], values[1], -values.sum()]
    return small_random_graph, coupling, explicit


@pytest.fixture
def binary_chain_workload():
    """A 6-node chain with binary labels at both ends."""
    graph = chain_graph(6)
    beliefs = BeliefMatrix.from_labels({0: 0, 5: 1}, num_nodes=6, num_classes=2,
                                       magnitude=0.1)
    return graph, homophily_matrix(epsilon=0.2), beliefs.residuals
