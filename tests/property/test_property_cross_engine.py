"""Property-based cross-engine tests: matrix vs relational implementations.

The strongest guarantee the library can offer is that the matrix and the
SQL-style implementations of the same semantics agree on *arbitrary* inputs,
not just hand-picked workloads.  These tests generate small random graphs,
couplings and label sets with hypothesis and assert bit-level agreement (up
to solver tolerance) between the engines.
"""

from __future__ import annotations

import numpy as np
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.coupling import CouplingMatrix
from repro.core import linbp, sbp
from repro.graphs import Graph
from repro.relational import linbp_sql, sbp_sql


@st.composite
def cross_engine_workloads(draw):
    """A small random graph, a convergent coupling, and sparse labels."""
    num_nodes = draw(st.integers(min_value=3, max_value=10))
    num_classes = draw(st.integers(min_value=2, max_value=3))
    pairs = st.tuples(st.integers(min_value=0, max_value=num_nodes - 1),
                      st.integers(min_value=0, max_value=num_nodes - 1))
    raw_edges = draw(st.lists(pairs, min_size=1, max_size=2 * num_nodes))
    edges = [(s, t) for s, t in raw_edges if s != t]
    assume(edges)
    weighted = draw(st.booleans())
    if weighted:
        edges = [(s, t, float(draw(st.integers(min_value=1, max_value=3))))
                 for s, t in edges]
    graph = Graph.from_edges(edges, num_nodes=num_nodes)
    strength = draw(st.floats(min_value=0.02, max_value=0.08))
    off_diagonal = -strength / (num_classes - 1)
    residual = np.full((num_classes, num_classes), off_diagonal)
    np.fill_diagonal(residual, strength)
    # Keep the coupling well inside the convergence region.
    rho_a = max(float(np.max(np.abs(np.linalg.eigvals(graph.adjacency.toarray())))),
                1.0)
    rho_h = float(np.max(np.abs(np.linalg.eigvals(residual))))
    coupling = CouplingMatrix.from_residual(residual,
                                            epsilon=min(0.4 / (rho_a * rho_h), 1.0))
    labeled = draw(st.lists(st.integers(min_value=0, max_value=num_nodes - 1),
                            min_size=1, max_size=num_nodes, unique=True))
    explicit = np.zeros((num_nodes, num_classes))
    for node in labeled:
        label = draw(st.integers(min_value=0, max_value=num_classes - 1))
        explicit[node, :] = -0.1 / (num_classes - 1)
        explicit[node, label] = 0.1
    return graph, coupling, explicit


class TestCrossEngineAgreement:
    @settings(max_examples=20, deadline=None)
    @given(cross_engine_workloads())
    def test_sbp_matrix_equals_sbp_sql(self, workload):
        graph, coupling, explicit = workload
        matrix_result = sbp(graph, coupling, explicit)
        sql_result = sbp_sql(graph, coupling, explicit)
        assert np.allclose(matrix_result.beliefs, sql_result.beliefs, atol=1e-10)
        assert np.array_equal(matrix_result.extra["geodesic_numbers"],
                              sql_result.extra["geodesic_numbers"])

    @settings(max_examples=15, deadline=None)
    @given(cross_engine_workloads())
    def test_linbp_matrix_equals_linbp_sql_at_fixed_point(self, workload):
        graph, coupling, explicit = workload
        matrix_result = linbp(graph, coupling, explicit, max_iterations=300,
                              tolerance=1e-12)
        sql_result = linbp_sql(graph, coupling, explicit, num_iterations=300,
                               tolerance=1e-12)
        assume(matrix_result.converged and sql_result.converged)
        assert np.allclose(matrix_result.beliefs, sql_result.beliefs, atol=1e-8)

    @settings(max_examples=20, deadline=None)
    @given(cross_engine_workloads())
    def test_top_beliefs_agree_between_engines(self, workload):
        graph, coupling, explicit = workload
        matrix_result = sbp(graph, coupling, explicit)
        sql_result = sbp_sql(graph, coupling, explicit)
        assert np.allclose(matrix_result.beliefs, sql_result.beliefs,
                           atol=1e-10)
        matrix_top = matrix_result.top_beliefs()
        sql_top = sql_result.top_beliefs()
        # top_beliefs() ties classes within 1e-10 of the row maximum; a
        # class sitting *at* that boundary can land on either side from
        # the two engines' (equal to 1e-10, not bit-identical) beliefs.
        # Skip only those boundary rows — everywhere else the sets must
        # match exactly.
        gaps = np.max(matrix_result.beliefs, axis=1, keepdims=True) \
            - matrix_result.beliefs
        ambiguous = np.any((gaps > 1e-11) & (gaps < 1e-9), axis=1)
        for node in range(graph.num_nodes):
            if ambiguous[node]:
                continue
            assert matrix_top[node] == sql_top[node], (
                f"top-belief sets disagree on node {node}")
