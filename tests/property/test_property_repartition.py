"""Property: incremental repair ≡ fresh partition, on query results, to 1e-10.

The acceptance bar for incremental repartitioning (ISSUE 8 tentpole):
over *random edge-delta chains*, a partition maintained purely by
:func:`repro.shard.repair.repair_partition` must be indistinguishable
from starting over —

* **structurally** — block for block equal to
  ``partition_from_assignment`` on the final graph (same assignment);
* **observably** — sharded LinBP on the repaired partition, on a fresh
  ``partition_graph()`` of the final graph (which may choose a
  completely *different* assignment), and plain single-matrix LinBP all
  agree on query beliefs to 1e-10.  Block-Jacobi sweeps are
  partition-independent, so any daylight between them is a repair bug.

Deltas may re-add existing edges (weights sum) and carry weights —
everything :meth:`Graph.with_edges_added` accepts must be repairable.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.coupling import synthetic_residual_matrix
from repro.engine import batch as engine_batch
from repro.engine import plan as engine_plan
from repro.graphs import Graph
from repro.shard import (
    get_sharded_plan,
    partition_from_assignment,
    partition_graph,
    repair_partition,
    run_sharded_batch,
)

NUM_ITERATIONS = 8


@st.composite
def repair_workloads(draw):
    num_nodes = draw(st.integers(min_value=4, max_value=18))
    num_shards = draw(st.integers(min_value=2, max_value=4))
    pairs = st.tuples(st.integers(min_value=0, max_value=num_nodes - 1),
                      st.integers(min_value=0, max_value=num_nodes - 1))
    base_edges = [(s, t) for s, t in
                  draw(st.lists(pairs, min_size=2, max_size=2 * num_nodes))
                  if s != t]
    deltas = []
    for _ in range(draw(st.integers(min_value=1, max_value=4))):
        delta = [(s, t, draw(st.sampled_from([1.0, 0.5, 2.0])))
                 for s, t in draw(st.lists(pairs, min_size=1, max_size=3))
                 if s != t]
        if delta:
            deltas.append(delta)
    seed = draw(st.integers(min_value=0, max_value=2**16))
    return num_nodes, num_shards, base_edges, deltas, seed


def _explicit(num_nodes: int, seed: int) -> np.ndarray:
    rng = np.random.default_rng(seed)
    explicit = np.zeros((num_nodes, 3))
    labeled = rng.choice(num_nodes, size=max(1, num_nodes // 3),
                         replace=False)
    values = rng.uniform(-0.1, 0.1, size=(labeled.size, 2))
    explicit[labeled, :2] = values
    explicit[labeled, 2] = -values.sum(axis=1)
    return explicit


class TestRepairChainProperties:
    @settings(max_examples=40, deadline=None)
    @given(repair_workloads())
    def test_chain_repair_equals_fresh_partition_on_query_results(
            self, workload):
        num_nodes, num_shards, base_edges, deltas, seed = workload
        graph = Graph.from_edges(base_edges, num_nodes=num_nodes)
        partition = partition_graph(graph, num_shards, method="bfs")
        for delta in deltas:
            new_graph = partition.graph.with_edges_added(delta)
            result = repair_partition(partition, new_graph, delta)
            assert set(result.repaired_shards) <= set(range(num_shards))
            partition = result.partition
        final_graph = partition.graph

        # Structural: block-for-block equal to a from-scratch build of
        # the same assignment on the final graph.
        rebuilt = partition_from_assignment(final_graph,
                                            partition.assignment,
                                            num_shards, method="bfs")
        for ours, fresh in zip(partition.blocks, rebuilt.blocks):
            assert np.array_equal(ours.nodes, fresh.nodes)
            assert np.array_equal(ours.halo_nodes, fresh.halo_nodes)
            assert np.array_equal(ours.halo_owners, fresh.halo_owners)
            assert np.array_equal(ours.degrees, fresh.degrees)
            assert (ours.adjacency != fresh.adjacency).nnz == 0

        # Observable: query results agree across the repaired partition,
        # a fresh partition_graph() (possibly different assignment), and
        # the single-matrix engine.
        if deltas:
            coupling = synthetic_residual_matrix(epsilon=0.04)
            explicit = _explicit(num_nodes, seed)
            repaired_result = run_sharded_batch(
                get_sharded_plan(partition, coupling), [explicit],
                num_iterations=NUM_ITERATIONS)[0]
            fresh_partition = partition_graph(final_graph, num_shards,
                                              method="bfs")
            fresh_result = run_sharded_batch(
                get_sharded_plan(fresh_partition, coupling), [explicit],
                num_iterations=NUM_ITERATIONS)[0]
            single = engine_batch.run_batch(
                engine_plan.get_plan(final_graph, coupling), [explicit],
                num_iterations=NUM_ITERATIONS)[0]
            assert np.abs(repaired_result.beliefs
                          - fresh_result.beliefs).max() < 1e-10
            assert np.abs(repaired_result.beliefs
                          - single.beliefs).max() < 1e-10
