"""Property-based partition invariants (ISSUE 5 satellite).

For arbitrary small graphs and shard counts, both partitioners must
satisfy the structural contract the block engine relies on:

* node coverage — every node is owned by exactly one shard, and the
  BFS and hash partitioners agree on which nodes exist (identical
  coverage sets, trivially all of ``0..n-1``);
* edge coverage — every undirected edge is either internal to exactly
  one shard or crosses shards and then appears in the halo maps of
  exactly its two endpoint shards;
* index translation — local→global→local is the identity on every
  block, and global→local→global recovers the original ids.
"""

from __future__ import annotations

import numpy as np
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.graphs import Graph
from repro.shard import partition_graph


@st.composite
def graphs_and_shards(draw):
    num_nodes = draw(st.integers(min_value=1, max_value=24))
    num_shards = draw(st.integers(min_value=1, max_value=6))
    pairs = st.tuples(st.integers(min_value=0, max_value=num_nodes - 1),
                      st.integers(min_value=0, max_value=num_nodes - 1))
    raw_edges = draw(st.lists(pairs, min_size=0, max_size=3 * num_nodes))
    edges = [(s, t) for s, t in raw_edges if s != t]
    graph = Graph.from_edges(edges, num_nodes=num_nodes)
    return graph, num_shards


class TestPartitionProperties:
    @settings(max_examples=60, deadline=None)
    @given(graphs_and_shards())
    def test_every_edge_in_exactly_one_shard_or_the_halo_map(self, workload):
        graph, num_shards = workload
        partition = partition_graph(graph, num_shards)
        assignment = partition.assignment
        internal = {block.shard_id: 0 for block in partition.blocks}
        for block in partition.blocks:
            internal[block.shard_id] = block.num_internal_entries
            halo_set = set(block.halo_nodes.tolist())
            # every cut column of the block is in its halo map
            cut_columns = block.adjacency.indices[
                block.adjacency.indices >= block.num_nodes]
            for column in np.unique(cut_columns):
                assert block.column_nodes[column] in halo_set
        for edge in graph.edges():
            owner_s = assignment[edge.source]
            owner_t = assignment[edge.target]
            source_block = partition.blocks[owner_s]
            target_block = partition.blocks[owner_t]
            if owner_s == owner_t:
                # internal to exactly one shard: neither endpoint is in
                # any halo map *for this edge* — the local row hits an
                # owned column.
                row = np.searchsorted(source_block.nodes, edge.source)
                start = source_block.adjacency.indptr[row]
                end = source_block.adjacency.indptr[row + 1]
                columns = source_block.adjacency.indices[start:end]
                target_local = source_block.to_local(
                    np.array([edge.target]))[0]
                assert target_local in columns
                assert target_local < source_block.num_nodes
            else:
                # cut edge: each endpoint shard imports the other end
                assert edge.target in source_block.halo_nodes
                assert edge.source in target_block.halo_nodes

    @settings(max_examples=60, deadline=None)
    @given(graphs_and_shards())
    def test_index_translation_round_trips(self, workload):
        graph, num_shards = workload
        partition = partition_graph(graph, num_shards)
        for block in partition.blocks:
            size = block.column_nodes.size
            if not size:
                continue
            local = np.arange(size)
            assert np.array_equal(block.to_local(block.to_global(local)),
                                  local)
            assert np.array_equal(
                block.to_global(block.to_local(block.column_nodes)),
                block.column_nodes)

    @settings(max_examples=60, deadline=None)
    @given(graphs_and_shards())
    def test_hash_and_bfs_partitioners_agree_on_node_coverage(self, workload):
        graph, num_shards = workload
        bfs = partition_graph(graph, num_shards, method="bfs")
        hashed = partition_graph(graph, num_shards, method="hash")
        bfs_nodes = np.sort(np.concatenate(
            [block.nodes for block in bfs.blocks]))
        hash_nodes = np.sort(np.concatenate(
            [block.nodes for block in hashed.blocks]))
        assert np.array_equal(bfs_nodes, hash_nodes)
        assert np.array_equal(bfs_nodes, np.arange(graph.num_nodes))
        # and each covers every edge entry exactly once
        for partition in (bfs, hashed):
            entries = sum(block.adjacency.nnz for block in partition.blocks)
            assert entries == graph.num_directed_edges

    @settings(max_examples=40, deadline=None)
    @given(graphs_and_shards())
    def test_shard_sizes_sum_and_stats_consistency(self, workload):
        graph, num_shards = workload
        assume(graph.num_edges > 0)
        partition = partition_graph(graph, num_shards)
        stats = partition.stats()
        assert sum(stats.shard_sizes) == graph.num_nodes
        assert 0 <= stats.cut_edges <= graph.num_edges
        assert 0.0 <= stats.cut_fraction <= 1.0
        internal_total = sum(block.num_internal_entries
                             for block in partition.blocks)
        assert internal_total // 2 + stats.cut_edges == graph.num_edges
