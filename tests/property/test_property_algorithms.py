"""Property-based tests for the propagation algorithms' structural invariants."""

from __future__ import annotations

import numpy as np
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.coupling import CouplingMatrix
from repro.core import linbp_closed_form, sbp
from repro.graphs import Graph


@st.composite
def random_workloads(draw):
    """Small random graph + k-class coupling + sparse explicit beliefs."""
    num_nodes = draw(st.integers(min_value=3, max_value=12))
    num_classes = draw(st.integers(min_value=2, max_value=4))
    pairs = st.tuples(st.integers(min_value=0, max_value=num_nodes - 1),
                      st.integers(min_value=0, max_value=num_nodes - 1))
    raw_edges = draw(st.lists(pairs, min_size=1, max_size=3 * num_nodes))
    edges = [(s, t) for s, t in raw_edges if s != t]
    assume(edges)
    graph = Graph.from_edges(edges, num_nodes=num_nodes)
    # Homophily-style residual coupling, scaled inside the convergence region.
    strength = draw(st.floats(min_value=0.01, max_value=0.1))
    off_diagonal = -strength / (num_classes - 1)
    residual = np.full((num_classes, num_classes), off_diagonal)
    np.fill_diagonal(residual, strength)
    rho = max(abs(np.linalg.eigvals(residual))) * max(
        1.0, float(np.max(np.abs(np.linalg.eigvals(graph.adjacency.toarray())))))
    epsilon = 0.5 / max(rho, 1e-6)
    epsilon = min(epsilon, 1.0)
    coupling = CouplingMatrix.from_residual(residual, epsilon=epsilon)
    num_labeled = draw(st.integers(min_value=1, max_value=num_nodes))
    labeled = draw(st.lists(st.integers(min_value=0, max_value=num_nodes - 1),
                            min_size=1, max_size=num_labeled, unique=True))
    explicit = np.zeros((num_nodes, num_classes))
    for node in labeled:
        label = draw(st.integers(min_value=0, max_value=num_classes - 1))
        explicit[node, :] = -0.1 / (num_classes - 1)
        explicit[node, label] = 0.1
    return graph, coupling, explicit


class TestLinBPProperties:
    @settings(max_examples=25, deadline=None)
    @given(random_workloads())
    def test_beliefs_rows_sum_to_zero(self, workload):
        """Residual beliefs stay centered: every row of B̂ sums to ~0."""
        graph, coupling, explicit = workload
        result = linbp_closed_form(graph, coupling, explicit)
        assert np.allclose(result.beliefs.sum(axis=1), 0.0, atol=1e-8)

    @settings(max_examples=25, deadline=None)
    @given(random_workloads())
    def test_closed_form_is_fixed_point_of_update(self, workload):
        """The closed form satisfies B̂ = Ê + A B̂ Ĥ − D B̂ Ĥ² exactly."""
        graph, coupling, explicit = workload
        beliefs = linbp_closed_form(graph, coupling, explicit).beliefs
        adjacency = graph.adjacency.toarray()
        degree = np.diag(graph.degree_vector())
        residual = coupling.residual
        reconstructed = explicit + adjacency @ beliefs @ residual \
            - degree @ beliefs @ (residual @ residual)
        assert np.allclose(beliefs, reconstructed, atol=1e-8)

    @settings(max_examples=25, deadline=None)
    @given(random_workloads(), st.floats(min_value=0.1, max_value=10.0))
    def test_linearity_in_explicit_beliefs(self, workload, factor):
        """Lemma 12: scaling Ê scales B̂ by the same factor."""
        graph, coupling, explicit = workload
        base = linbp_closed_form(graph, coupling, explicit).beliefs
        scaled = linbp_closed_form(graph, coupling, factor * explicit).beliefs
        assert np.allclose(scaled, factor * base, atol=1e-7 * max(1.0, factor))

    @settings(max_examples=25, deadline=None)
    @given(random_workloads())
    def test_superposition(self, workload):
        """LinBP is linear: the response to Ê1 + Ê2 is the sum of responses."""
        graph, coupling, explicit = workload
        rng = np.random.default_rng(0)
        other = np.zeros_like(explicit)
        node = rng.integers(0, graph.num_nodes)
        other[node, 0] = 0.05
        other[node, 1:] = -0.05 / (explicit.shape[1] - 1)
        combined = linbp_closed_form(graph, coupling, explicit + other).beliefs
        separate = linbp_closed_form(graph, coupling, explicit).beliefs \
            + linbp_closed_form(graph, coupling, other).beliefs
        assert np.allclose(combined, separate, atol=1e-8)


class TestSBPProperties:
    @settings(max_examples=25, deadline=None)
    @given(random_workloads())
    def test_labeled_nodes_keep_explicit_beliefs(self, workload):
        graph, coupling, explicit = workload
        result = sbp(graph, coupling, explicit)
        labeled = np.nonzero(np.any(explicit != 0.0, axis=1))[0]
        assert np.allclose(result.beliefs[labeled], explicit[labeled])

    @settings(max_examples=25, deadline=None)
    @given(random_workloads())
    def test_unreachable_nodes_have_zero_beliefs(self, workload):
        graph, coupling, explicit = workload
        result = sbp(graph, coupling, explicit)
        geodesic = result.extra["geodesic_numbers"]
        unreachable = geodesic == -1
        assert np.allclose(result.beliefs[unreachable], 0.0)

    @settings(max_examples=25, deadline=None)
    @given(random_workloads())
    def test_incremental_equals_scratch_for_random_split(self, workload):
        """ΔSBP (Algorithm 3) must equal recomputation for any label split."""
        from repro.core import SBP

        graph, coupling, explicit = workload
        labeled = np.nonzero(np.any(explicit != 0.0, axis=1))[0]
        assume(labeled.size >= 2)
        add = labeled[::2]
        initial = explicit.copy()
        initial[add] = 0.0
        runner = SBP(graph, coupling)
        runner.run(initial)
        incremental = runner.add_explicit_beliefs({int(n): explicit[n] for n in add})
        scratch = sbp(graph, coupling, explicit)
        assert np.allclose(incremental.beliefs, scratch.beliefs, atol=1e-9)

    @settings(max_examples=25, deadline=None)
    @given(random_workloads(), st.floats(min_value=0.01, max_value=0.9))
    def test_standardized_assignment_independent_of_epsilon(self, workload, epsilon):
        """Section 6.2: SBP's standardized beliefs do not depend on ε_H."""
        graph, coupling, explicit = workload
        reference_run = sbp(graph, coupling, explicit)
        rescaled_run = sbp(graph, coupling.scaled(epsilon), explicit)
        reference = reference_run.standardized_beliefs()
        rescaled = rescaled_run.standardized_beliefs()
        # Within one geodesic level the ε dependence is a common (ε·h)^g
        # factor, so a node whose same-level path contributions (nearly)
        # cancel — e.g. equal-weight paths from opposite labels — cancels
        # identically at every ε: its raw row is float noise and its
        # standardized direction is meaningless.  The invariance claim is
        # exact-arithmetic, so compare only rows that are resolvable
        # relative to the largest row of their own level.
        geodesic = reference_run.extra["geodesic_numbers"]
        magnitude = np.abs(reference_run.beliefs).max(axis=1)
        resolvable = np.zeros(graph.num_nodes, dtype=bool)
        for level in np.unique(geodesic[geodesic > 0]):
            rows = geodesic == level
            resolvable[rows] = magnitude[rows] > 1e-6 * magnitude[rows].max()
        assert np.allclose(reference[resolvable], rescaled[resolvable],
                           atol=1e-7)
