"""Cross-backend differential property suite for the SQL execution backends.

The backends under :mod:`repro.relational.backends` claim *identical*
semantics to the in-memory engines — not just similar beliefs, but the
same iteration counts and convergence flags, query by query.  These tests
generate small random graphs, convergent couplings and sparse label sets
with hypothesis and assert, on every example:

    run_batch()  ≡  python backend  ≡  sqlite backend  ≡  duckdb backend

(DuckDB joins the comparison only when the optional package is installed;
the other equalities must hold everywhere.)  Beliefs agree to 1e-10;
iteration counts and convergence flags agree exactly, except when the
deciding sweep's max change lands on the tolerance boundary itself — see
``_assert_convergence_agrees``.

``derandomize=True`` keeps the suite reproducible in CI: the examples are
drawn deterministically from the test's source, so a red run is always
re-runnable locally.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import example, given, settings
from hypothesis import strategies as st

from repro.coupling import CouplingMatrix
from repro.engine.batch import run_batch
from repro.engine.plan import get_plan
from repro.engine.sbp_plan import run_sbp_batch
from repro.graphs import Graph
from repro.relational.backends import BACKENDS, get_backend

from tests.property.test_property_cross_engine import cross_engine_workloads

TOLERANCE = 1e-10

#: A workload whose max belief change lands *on* the 1e-10 stopping
#: boundary at sweep 10 (run_batch computes 1.0000000134e-10, the SQL
#: summation order 9.9999999600e-11), so the backends legitimately stop
#: one sweep apart.  Pinned so the boundary handling below stays covered.
_BOUNDARY_WORKLOAD = (
    Graph.from_edges([(0, 1)], num_nodes=3),
    CouplingMatrix.from_residual(np.array([[0.05, -0.05], [-0.05, 0.05]]),
                                 epsilon=1.0),
    np.array([[0.1, -0.1], [0.0, 0.0], [0.0, 0.0]]),
)


def _assert_convergence_agrees(result, reference, name):
    """Iteration counts and convergence flags must match — exactly, unless
    the deciding sweep's max belief change sits within float noise of the
    tolerance.  The backends sum the same update in a different order than
    the SpMM engine, so a change landing on the 1e-10 boundary can round to
    opposite sides of it and cost (or save) exactly one sweep.  Beliefs
    still agree to TOLERANCE either way; only in that knife-edge case is a
    one-sweep difference accepted.
    """
    if (result.iterations == reference.iterations
            and result.converged == reference.converged):
        return
    assert abs(result.iterations - reference.iterations) <= 1, (
        f"backend {name}: {result.iterations} iterations vs "
        f"{reference.iterations} for run_batch — more than a boundary tie")
    deciding = min(result.iterations, reference.iterations) - 1
    for label, history in (("run_batch", reference.residual_history),
                           (name, result.residual_history)):
        change = history[deciding]
        assert abs(change - TOLERANCE) <= TOLERANCE * 1e-6, (
            f"{label}: change {change!r} at the deciding sweep is not "
            f"within noise of the tolerance, so iteration counts must "
            f"match exactly (backend {name}: {result.iterations}, "
            f"run_batch: {reference.iterations})")

#: Backends every example is checked against.  DuckDB is compared only
#: when installed; its absence must not fail the suite.
COMPARED_BACKENDS = ["python", "sqlite"] + (
    ["duckdb"] if BACKENDS["duckdb"].is_available() else [])


def _backend_results(workload, run):
    """Run ``run(backend)`` on every compared backend; return name->result."""
    graph, coupling, explicit = workload
    results = {}
    for name in COMPARED_BACKENDS:
        with get_backend(name) as backend:
            backend.load_graph(graph, coupling, explicit)
            results[name] = run(backend)
    return results


class TestLinBPDifferential:
    @settings(max_examples=10, deadline=None, derandomize=True)
    @given(cross_engine_workloads())
    def test_backends_match_run_batch_to_convergence(self, workload):
        graph, coupling, explicit = workload
        reference = run_batch(get_plan(graph, coupling), [explicit],
                              max_iterations=100, tolerance=TOLERANCE)[0]
        results = _backend_results(
            workload,
            lambda backend: backend.run_linbp(max_iterations=100,
                                              tolerance=TOLERANCE))
        for name, result in results.items():
            np.testing.assert_allclose(
                result.beliefs, reference.beliefs, rtol=0, atol=TOLERANCE,
                err_msg=f"backend {name} diverges from run_batch")
            _assert_convergence_agrees(result, reference, name)

    @settings(max_examples=6, deadline=None, derandomize=True)
    @given(cross_engine_workloads(),
           st.integers(min_value=1, max_value=4))
    def test_backends_match_run_batch_at_fixed_iterations(self, workload,
                                                          num_iterations):
        graph, coupling, explicit = workload
        reference = run_batch(get_plan(graph, coupling), [explicit],
                              num_iterations=num_iterations)[0]
        results = _backend_results(
            workload,
            lambda backend: backend.run_linbp(num_iterations=num_iterations))
        for name, result in results.items():
            np.testing.assert_allclose(
                result.beliefs, reference.beliefs, rtol=0, atol=TOLERANCE,
                err_msg=f"backend {name} diverges from run_batch after "
                        f"{num_iterations} fixed iterations")
            # Fixed budgets always agree on the count; the converged flag
            # (last change < default tolerance) gets the boundary handling.
            assert result.iterations == reference.iterations
            _assert_convergence_agrees(result, reference, name)

    @settings(max_examples=6, deadline=None, derandomize=True)
    @given(cross_engine_workloads())
    @example(_BOUNDARY_WORKLOAD)
    def test_backends_match_run_batch_without_echo(self, workload):
        graph, coupling, explicit = workload
        reference = run_batch(
            get_plan(graph, coupling, echo_cancellation=False), [explicit],
            max_iterations=100, tolerance=TOLERANCE)[0]
        results = _backend_results(
            workload,
            lambda backend: backend.run_linbp(max_iterations=100,
                                              tolerance=TOLERANCE,
                                              echo_cancellation=False))
        for name, result in results.items():
            np.testing.assert_allclose(
                result.beliefs, reference.beliefs, rtol=0, atol=TOLERANCE,
                err_msg=f"backend {name} diverges from LinBP* run_batch")
            _assert_convergence_agrees(result, reference, name)


class TestSBPDifferential:
    @settings(max_examples=10, deadline=None, derandomize=True)
    @given(cross_engine_workloads())
    def test_backends_match_run_sbp_batch(self, workload):
        graph, coupling, explicit = workload
        reference = run_sbp_batch(graph, coupling, [explicit])[0]
        results = _backend_results(workload,
                                   lambda backend: backend.run_sbp())
        for name, result in results.items():
            np.testing.assert_allclose(
                result.beliefs, reference.beliefs, rtol=0, atol=TOLERANCE,
                err_msg=f"backend {name} diverges from run_sbp_batch")
            assert result.iterations == reference.iterations
            assert result.converged is True
            assert np.array_equal(result.extra["geodesic_numbers"],
                                  reference.extra["geodesic_numbers"]), (
                f"backend {name} computed different geodesic numbers")


class TestTopLabelDifferential:
    @settings(max_examples=6, deadline=None, derandomize=True)
    @given(cross_engine_workloads())
    def test_streamed_top_labels_match_hard_labels(self, workload):
        """The in-database argmax query equals PropagationResult.hard_labels.

        ``top_labels()`` is the out-of-core path — it must agree with the
        dense argmax on every graph, including nodes with all-zero beliefs
        (omitted by the stream, −1 in ``hard_labels``).
        """
        graph, coupling, explicit = workload
        reference = run_batch(get_plan(graph, coupling), [explicit],
                              max_iterations=100, tolerance=TOLERANCE)[0]
        expected = {node: int(label)
                    for node, label in enumerate(reference.hard_labels())
                    if label >= 0}
        for name in COMPARED_BACKENDS:
            with get_backend(name) as backend:
                backend.load_graph(graph, coupling, explicit)
                backend.run_linbp(max_iterations=100, tolerance=TOLERANCE,
                                  materialize=False)
                assert dict(backend.top_labels()) == expected, (
                    f"backend {name}: streamed top labels disagree with "
                    "hard_labels()")


def test_duckdb_comparison_status():
    """Make the DuckDB leg's participation visible in the test report."""
    if not BACKENDS["duckdb"].is_available():
        pytest.skip("duckdb not installed; differential suite compared "
                    "python and sqlite only")
    assert "duckdb" in COMPARED_BACKENDS
