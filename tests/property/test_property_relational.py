"""Property-based tests for the relational engine against naive reference semantics."""

from __future__ import annotations

from typing import Dict
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.relational import Table, aggregate, anti_join, equi_join, project, select, union_all

# Small value domains keep join outputs bounded while still exercising
# duplicates, empty matches and multi-row groups.
keys = st.integers(min_value=0, max_value=5)
values = st.integers(min_value=-10, max_value=10)


@st.composite
def left_tables(draw):
    rows = draw(st.lists(st.tuples(keys, values), max_size=15))
    return Table("L", ("k", "x"), rows=rows)


@st.composite
def right_tables(draw):
    rows = draw(st.lists(st.tuples(keys, values), max_size=15))
    return Table("R", ("k", "y"), rows=rows)


class TestJoinProperties:
    @settings(max_examples=60, deadline=None)
    @given(left_tables(), right_tables())
    def test_equi_join_matches_nested_loop_reference(self, left, right):
        produced = sorted(equi_join(left, right, on=[("k", "k")]).rows)
        expected = sorted((l_key, l_value, r_key, r_value)
                          for l_key, l_value in left.rows
                          for r_key, r_value in right.rows
                          if l_key == r_key)
        assert produced == expected

    @settings(max_examples=60, deadline=None)
    @given(left_tables(), right_tables())
    def test_join_cardinality_symmetry(self, left, right):
        one = equi_join(left, right, on=[("k", "k")])
        two = equi_join(right, left, on=[("k", "k")])
        assert one.num_rows == two.num_rows

    @settings(max_examples=60, deadline=None)
    @given(left_tables(), right_tables())
    def test_anti_join_is_complement_of_semi_join(self, left, right):
        matched_keys = {r_key for r_key, _ in right.rows}
        kept = sorted(anti_join(left, right, on=[("k", "k")]).rows)
        expected = sorted(row for row in left.rows if row[0] not in matched_keys)
        assert kept == expected

    @settings(max_examples=60, deadline=None)
    @given(left_tables(), right_tables())
    def test_join_plus_anti_join_partition_left_rows(self, left, right):
        """Every left row either has a join partner or appears in the anti-join."""
        right_keys = {row[0] for row in right.rows}
        anti_rows = anti_join(left, right, on=[("k", "k")]).rows
        for row in left.rows:
            has_partner = row[0] in right_keys
            in_anti_join = row in anti_rows
            assert has_partner != in_anti_join


class TestAggregateProperties:
    @settings(max_examples=60, deadline=None)
    @given(left_tables())
    def test_group_by_sum_matches_reference(self, table):
        produced = {row[0]: row[1]
                    for row in aggregate(table, group_by=("k",),
                                         aggregations={"total": ("sum",
                                                                 lambda r: r["x"])})}
        expected: Dict[int, int] = {}
        for key, value in table.rows:
            expected[key] = expected.get(key, 0) + value
        assert produced == expected

    @settings(max_examples=60, deadline=None)
    @given(left_tables())
    def test_count_adds_up_to_table_size(self, table):
        if table.num_rows == 0:
            return
        counts = aggregate(table, group_by=("k",),
                           aggregations={"n": ("count", lambda r: 1)})
        assert sum(row[1] for row in counts) == table.num_rows

    @settings(max_examples=60, deadline=None)
    @given(left_tables())
    def test_min_max_bound_sum(self, table):
        if table.num_rows == 0:
            return
        stats = aggregate(table, group_by=("k",),
                          aggregations={
                              "lo": ("min", lambda r: r["x"]),
                              "hi": ("max", lambda r: r["x"]),
                              "n": ("count", lambda r: 1),
                              "total": ("sum", lambda r: r["x"]),
                          })
        for _, low, high, count, total in stats.rows:
            assert low * count <= total <= high * count


class TestSetOperatorProperties:
    @settings(max_examples=60, deadline=None)
    @given(left_tables())
    def test_select_then_union_with_complement_restores_bag(self, table):
        positives = select(table, predicate=lambda r: r["x"] >= 0)
        negatives = select(table, predicate=lambda r: r["x"] < 0)
        combined = union_all([positives, negatives])
        assert sorted(combined.rows) == sorted(table.rows)

    @settings(max_examples=60, deadline=None)
    @given(left_tables())
    def test_project_distinct_removes_exact_duplicates_only(self, table):
        distinct = project(table, ("k",), distinct=True)
        assert sorted(row[0] for row in distinct) == sorted({row[0]
                                                             for row in table.rows})

    @settings(max_examples=60, deadline=None)
    @given(left_tables())
    def test_select_equality_matches_predicate_form(self, table):
        by_kwarg = select(table, k=3)
        by_predicate = select(table, predicate=lambda r: r["k"] == 3)
        assert sorted(by_kwarg.rows) == sorted(by_predicate.rows)
