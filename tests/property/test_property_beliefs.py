"""Property-based tests (hypothesis) for centering and standardization invariants."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import assume, given
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.beliefs import (
    BeliefMatrix,
    center_probability_matrix,
    explicit_residuals_from_labels,
    standardize,
    top_belief_sets,
    uncenter_residual_matrix,
)

# Belief residuals in practice live well within [-1e3, 1e3]; the strategies
# below exclude subnormal magnitudes so the invariants are not drowned in
# floating-point pathology (near-identical huge values, 5e-324 denormals, ...).
finite_floats = st.floats(min_value=-1e3, max_value=1e3, allow_nan=False,
                          allow_infinity=False)

nonzero_or_zero_floats = st.one_of(
    st.just(0.0),
    st.floats(min_value=1e-3, max_value=10.0),
    st.floats(min_value=-10.0, max_value=-1e-3),
)


@st.composite
def belief_vectors(draw, min_size=2, max_size=8):
    size = draw(st.integers(min_value=min_size, max_value=max_size))
    return np.array(draw(st.lists(finite_floats, min_size=size, max_size=size)))


@st.composite
def belief_matrices(draw, max_nodes=12, max_classes=6):
    n = draw(st.integers(min_value=1, max_value=max_nodes))
    k = draw(st.integers(min_value=2, max_value=max_classes))
    values = draw(hnp.arrays(dtype=float, shape=(n, k),
                             elements=nonzero_or_zero_floats))
    return values


def _has_reasonable_spread(vector: np.ndarray) -> bool:
    """Skip vectors whose spread is many orders below their magnitude.

    Standardization divides by the standard deviation; when the spread is at
    the level of floating-point representation error of huge values, the
    result is dominated by rounding and the invariants below cannot hold.
    """
    sigma = float(vector.std())
    return sigma == 0.0 or sigma > 1e-7 * (1.0 + float(np.abs(vector).max()))


class TestStandardizeProperties:
    @given(belief_vectors())
    def test_zero_mean(self, vector):
        assume(_has_reasonable_spread(vector))
        result = standardize(vector)
        assert abs(result.mean()) < 1e-6

    @given(belief_vectors())
    def test_unit_std_or_zero(self, vector):
        assume(_has_reasonable_spread(vector))
        result = standardize(vector)
        sigma = result.std()
        assert sigma == pytest.approx(1.0, abs=1e-6) or sigma == pytest.approx(0.0)

    @given(belief_vectors(), st.floats(min_value=0.01, max_value=100.0))
    def test_positive_scale_invariance(self, vector, factor):
        assume(float(vector.std()) > 1e-7 * (1.0 + float(np.abs(vector).max())))
        assert np.allclose(standardize(vector), standardize(factor * vector),
                           atol=1e-7)

    @given(belief_vectors(), st.floats(min_value=-50.0, max_value=50.0))
    def test_idempotent_after_shift_of_standardized(self, vector, shift):
        assume(_has_reasonable_spread(vector))
        once = standardize(vector)
        twice = standardize(once + shift)
        assert np.allclose(once, twice, atol=1e-7) or np.allclose(once, 0.0)


class TestCenteringProperties:
    @given(belief_matrices())
    def test_roundtrip(self, matrix):
        assert np.allclose(uncenter_residual_matrix(center_probability_matrix(matrix)),
                           matrix, atol=1e-9)

    @given(st.integers(min_value=1, max_value=20), st.integers(min_value=2, max_value=6),
           st.data())
    def test_label_residuals_sum_to_zero(self, num_nodes, num_classes, data):
        labels = data.draw(st.dictionaries(
            st.integers(min_value=0, max_value=num_nodes - 1),
            st.integers(min_value=0, max_value=num_classes - 1), max_size=num_nodes))
        residuals = explicit_residuals_from_labels(labels, num_nodes, num_classes)
        assert np.allclose(residuals.sum(axis=1), 0.0, atol=1e-12)
        labeled = set(labels)
        for node in range(num_nodes):
            if node in labeled:
                assert np.argmax(residuals[node]) == labels[node]
            else:
                assert np.allclose(residuals[node], 0.0)


class TestTopBeliefProperties:
    @given(belief_matrices())
    def test_argmax_always_in_top_set(self, matrix):
        top = top_belief_sets(matrix)
        for row, classes in zip(matrix, top):
            if np.any(row != 0.0):
                assert int(np.argmax(row)) in classes

    @given(belief_matrices(), st.floats(min_value=0.01, max_value=10.0))
    def test_scaling_does_not_change_top_sets(self, matrix, factor):
        assert top_belief_sets(matrix) == top_belief_sets(factor * matrix)

    @given(belief_matrices())
    def test_hard_labels_consistent_with_top_sets(self, matrix):
        beliefs = BeliefMatrix(matrix)
        labels = beliefs.hard_labels()
        top = beliefs.top_beliefs()
        for label, classes in zip(labels, top):
            if label >= 0:
                assert label in classes
            else:
                assert classes == set()
