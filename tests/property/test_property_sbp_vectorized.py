"""Property tests: the vectorised SBP engine ≡ the pre-refactor reference.

Three families of properties over randomly generated graphs:

* the vectorised multi-source BFS agrees with ``scipy.sparse.csgraph``
  hop distances;
* vectorised/batched SBP reproduces the frozen pre-refactor
  implementation (:mod:`repro.core._sbp_reference`) to 1e-10, including
  after arbitrary chains of ``add_explicit_beliefs`` / ``add_edges``;
* after any update chain, the incremental state equals a from-scratch
  recomputation on the final graph and labels.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from scipy.sparse.csgraph import shortest_path

from repro.core import SBP, sbp
from repro.core._sbp_reference import (
    ReferenceSBP,
    reference_shortest_path_weights,
)
from repro.coupling import synthetic_residual_matrix
from repro.graphs import (
    UNREACHABLE,
    geodesic_numbers,
    random_graph,
    shortest_path_weights,
)


def _workload(seed: int, num_nodes: int, num_labels: int, weighted: bool = False):
    graph = random_graph(num_nodes, 0.10, seed=seed, weighted=weighted)
    coupling = synthetic_residual_matrix(epsilon=0.5)
    rng = np.random.default_rng(seed + 1000)
    explicit = np.zeros((num_nodes, 3))
    for node in rng.choice(num_nodes, size=num_labels, replace=False):
        values = rng.uniform(-0.1, 0.1, size=2)
        explicit[node] = [values[0], values[1], -values.sum()]
    return graph, coupling, explicit


def _random_update(rng: np.random.Generator, num_nodes: int, count: int):
    nodes = rng.choice(num_nodes, size=count, replace=False)
    update = {}
    for node in nodes:
        values = rng.uniform(-0.1, 0.1, size=2)
        update[int(node)] = np.array([values[0], values[1], -values.sum()])
    return update

def _random_new_edges(rng: np.random.Generator, graph, count: int):
    edges = []
    attempts = 0
    while len(edges) < count and attempts < 200:
        attempts += 1
        source, target = rng.integers(0, graph.num_nodes, size=2)
        if source != target and not graph.has_edge(int(source), int(target)):
            edges.append((int(source), int(target), float(rng.uniform(0.5, 2.0))))
    return edges


class TestBFSEquivalence:
    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10_000),
           num_nodes=st.integers(min_value=2, max_value=50),
           num_labels=st.integers(min_value=1, max_value=5))
    def test_bfs_matches_csgraph(self, seed, num_nodes, num_labels):
        graph = random_graph(num_nodes, 0.1, seed=seed)
        rng = np.random.default_rng(seed)
        labeled = rng.choice(num_nodes, size=min(num_labels, num_nodes),
                             replace=False)
        numbers = geodesic_numbers(graph, labeled.tolist())
        hops = np.atleast_2d(shortest_path(graph.adjacency, method="D",
                                           unweighted=True, indices=labeled))
        expected = np.min(hops, axis=0)
        finite = np.isfinite(expected)
        assert np.array_equal(numbers[finite], expected[finite].astype(int))
        assert np.all(numbers[~finite] == UNREACHABLE)


class TestSBPEquivalence:
    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_run_matches_reference(self, seed):
        graph, coupling, explicit = _workload(seed, 45, 6, weighted=seed % 2 == 0)
        result = sbp(graph, coupling, explicit)
        reference = ReferenceSBP(graph, coupling)
        reference_beliefs = reference.run(explicit)
        assert np.abs(result.beliefs - reference_beliefs).max() < 1e-10
        assert np.array_equal(result.extra["geodesic_numbers"],
                              reference.geodesic_numbers)

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10_000),
           steps=st.lists(st.sampled_from(["beliefs", "edges"]),
                          min_size=1, max_size=4))
    def test_update_chains_match_reference_and_scratch(self, seed, steps):
        graph, coupling, explicit = _workload(seed, 40, 5)
        runner = SBP(graph, coupling)
        runner.run(explicit)
        reference = ReferenceSBP(graph, coupling)
        reference.run(explicit)
        rng = np.random.default_rng(seed + 7)
        accumulated = explicit.copy()
        for step in steps:
            if step == "beliefs":
                update = _random_update(rng, graph.num_nodes, 3)
                runner.add_explicit_beliefs(update)
                reference.add_explicit_beliefs(update)
                for node, vector in update.items():
                    accumulated[node] = vector
            else:
                new_edges = _random_new_edges(rng, runner.graph, 3)
                if not new_edges:
                    continue
                runner.add_edges(new_edges)
                reference.add_edges(new_edges)
            assert np.abs(runner.beliefs - reference.beliefs).max() < 1e-10
            assert np.array_equal(runner.geodesic_numbers,
                                  reference.geodesic_numbers)
        # After the whole chain the state equals a from-scratch run on the
        # final graph (the runner's graph already contains the added edges).
        scratch = sbp(runner.graph, coupling, accumulated)
        assert np.abs(runner.beliefs - scratch.beliefs).max() < 1e-10
        assert np.array_equal(runner.geodesic_numbers,
                              scratch.extra["geodesic_numbers"])


class TestShortestPathWeightsEquivalence:
    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10_000),
           num_labels=st.integers(min_value=1, max_value=5))
    def test_matches_reference_on_random_weighted_graphs(self, seed, num_labels):
        graph = random_graph(35, 0.12, seed=seed, weighted=True)
        rng = np.random.default_rng(seed)
        labeled = rng.choice(35, size=num_labels, replace=False).tolist()
        produced = shortest_path_weights(graph, labeled).toarray()
        expected = reference_shortest_path_weights(graph, labeled).toarray()
        assert np.allclose(produced, expected, atol=1e-12)
