"""Property-based tests for the graph substrate and geodesic machinery."""

from __future__ import annotations

import numpy as np
from hypothesis import assume, given
from hypothesis import strategies as st

from repro.graphs import UNREACHABLE, Graph, geodesic_numbers, modified_adjacency


@st.composite
def edge_lists(draw, max_nodes=15, max_edges=30):
    num_nodes = draw(st.integers(min_value=2, max_value=max_nodes))
    pairs = st.tuples(st.integers(min_value=0, max_value=num_nodes - 1),
                      st.integers(min_value=0, max_value=num_nodes - 1))
    raw_edges = draw(st.lists(pairs, min_size=1, max_size=max_edges))
    edges = [(s, t) for s, t in raw_edges if s != t]
    assume(edges)
    return num_nodes, edges


@st.composite
def labeled_graphs(draw):
    num_nodes, edges = draw(edge_lists())
    num_labels = draw(st.integers(min_value=1, max_value=num_nodes))
    labeled = draw(st.lists(st.integers(min_value=0, max_value=num_nodes - 1),
                            min_size=1, max_size=num_labels, unique=True))
    return Graph.from_edges(edges, num_nodes=num_nodes), labeled


class TestGraphInvariants:
    @given(edge_lists())
    def test_adjacency_symmetric_and_nonnegative(self, data):
        num_nodes, edges = data
        graph = Graph.from_edges(edges, num_nodes=num_nodes)
        adjacency = graph.adjacency
        difference = (adjacency - adjacency.T)
        assert difference.nnz == 0 or np.max(np.abs(difference.data)) < 1e-12
        if adjacency.nnz:
            assert adjacency.data.min() > 0.0

    @given(edge_lists())
    def test_degree_sum_equals_directed_edge_count(self, data):
        num_nodes, edges = data
        graph = Graph.from_edges(edges, num_nodes=num_nodes)
        degrees = [graph.degree(node) for node in range(graph.num_nodes)]
        assert sum(degrees) == graph.num_directed_edges

    @given(edge_lists())
    def test_neighbors_consistent_with_edges(self, data):
        num_nodes, edges = data
        graph = Graph.from_edges(edges, num_nodes=num_nodes)
        for edge in graph.edges():
            neighbors, _ = graph.neighbors(edge.source)
            assert edge.target in neighbors.tolist()


class TestGeodesicInvariants:
    @given(labeled_graphs())
    def test_labeled_nodes_are_level_zero(self, data):
        graph, labeled = data
        numbers = geodesic_numbers(graph, labeled)
        assert all(numbers[node] == 0 for node in labeled)

    @given(labeled_graphs())
    def test_neighbor_levels_differ_by_at_most_one(self, data):
        """Adjacent reachable nodes can differ by at most 1 in geodesic number."""
        graph, labeled = data
        numbers = geodesic_numbers(graph, labeled)
        for edge in graph.edges():
            a, b = numbers[edge.source], numbers[edge.target]
            if a != UNREACHABLE and b != UNREACHABLE:
                assert abs(a - b) <= 1
            else:
                # A reachable node cannot neighbour an unreachable one.
                assert a == UNREACHABLE and b == UNREACHABLE

    @given(labeled_graphs())
    def test_modified_adjacency_is_acyclic(self, data):
        """Lemma 17(1): A* contains no directed cycles."""
        graph, labeled = data
        dag = modified_adjacency(graph, labeled).toarray()
        power = np.eye(graph.num_nodes)
        for _ in range(graph.num_nodes + 1):
            power = power @ dag
        assert np.allclose(power, 0.0)

    @given(labeled_graphs())
    def test_modified_adjacency_edges_go_up_one_level(self, data):
        graph, labeled = data
        numbers = geodesic_numbers(graph, labeled)
        dag = modified_adjacency(graph, labeled).tocoo()
        for source, target in zip(dag.row, dag.col):
            assert numbers[target] == numbers[source] + 1
