"""Tests for the command-line interface (label / analyze / experiment)."""

from __future__ import annotations

import json
import pytest

from repro import BeliefMatrix
from repro.cli import build_parser, main
from repro.graphs import Graph, write_belief_table, write_edge_list


@pytest.fixture
def cli_files(tmp_path):
    """A small chain graph, explicit beliefs and a coupling file on disk."""
    graph = Graph.from_edges([(0, 1), (1, 2), (2, 3), (3, 4), (4, 5)])
    explicit = BeliefMatrix.from_labels({0: 0, 5: 1}, num_nodes=6, num_classes=2,
                                        magnitude=0.1)
    graph_path = tmp_path / "graph.tsv"
    beliefs_path = tmp_path / "beliefs.tsv"
    coupling_path = tmp_path / "coupling.json"
    write_edge_list(graph, graph_path)
    write_belief_table(explicit.residuals, beliefs_path)
    coupling_path.write_text(json.dumps({
        "stochastic": [[0.8, 0.2], [0.2, 0.8]],
        "classes": ["left", "right"],
    }))
    return graph_path, beliefs_path, coupling_path, tmp_path


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_version_flag(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            build_parser().parse_args(["--version"])
        assert excinfo.value.code == 0

    def test_label_defaults(self, cli_files):
        graph_path, beliefs_path, coupling_path, _ = cli_files
        args = build_parser().parse_args([
            "label", "--graph", str(graph_path), "--beliefs", str(beliefs_path),
            "--coupling", str(coupling_path)])
        assert args.method == "linbp"
        assert args.epsilon == 1.0


class TestLabelCommand:
    @pytest.mark.parametrize("method", ["linbp", "linbp*", "sbp", "bp"])
    def test_methods_run_and_print_labels(self, cli_files, capsys, method):
        graph_path, beliefs_path, coupling_path, _ = cli_files
        exit_code = main([
            "label", "--graph", str(graph_path), "--beliefs", str(beliefs_path),
            "--coupling", str(coupling_path), "--method", method,
            "--epsilon", "0.3"])
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "left" in captured.out and "right" in captured.out

    def test_output_file_written(self, cli_files):
        graph_path, beliefs_path, coupling_path, tmp_path = cli_files
        output = tmp_path / "final.tsv"
        exit_code = main([
            "label", "--graph", str(graph_path), "--beliefs", str(beliefs_path),
            "--coupling", str(coupling_path), "--epsilon", "0.3",
            "--output", str(output)])
        assert exit_code == 0
        assert output.exists()
        lines = [line for line in output.read_text().splitlines() if line.strip()]
        assert len(lines) == 6 * 2  # every node, every class

    def test_limit_truncates_output(self, cli_files, capsys):
        graph_path, beliefs_path, coupling_path, _ = cli_files
        main(["label", "--graph", str(graph_path), "--beliefs", str(beliefs_path),
              "--coupling", str(coupling_path), "--epsilon", "0.3", "--limit", "2"])
        captured = capsys.readouterr()
        assert "more nodes" in captured.out

    def test_missing_file_reports_error(self, cli_files, capsys):
        _, beliefs_path, coupling_path, tmp_path = cli_files
        exit_code = main([
            "label", "--graph", str(tmp_path / "nope.tsv"),
            "--beliefs", str(beliefs_path), "--coupling", str(coupling_path)])
        assert exit_code == 2
        assert "error" in capsys.readouterr().err

    def test_bad_coupling_file_reports_error(self, cli_files, capsys):
        graph_path, beliefs_path, _, tmp_path = cli_files
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"something": []}))
        exit_code = main([
            "label", "--graph", str(graph_path), "--beliefs", str(beliefs_path),
            "--coupling", str(bad)])
        assert exit_code == 2


class TestAnalyzeCommand:
    def test_prints_thresholds(self, cli_files, capsys):
        graph_path, _, coupling_path, _ = cli_files
        exit_code = main(["analyze", "--graph", str(graph_path),
                          "--coupling", str(coupling_path)])
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "rho(A):" in captured.out
        assert "exact epsilon threshold LinBP:" in captured.out

    def test_mooij_kappen_option(self, cli_files, capsys):
        graph_path, _, coupling_path, _ = cli_files
        exit_code = main(["analyze", "--graph", str(graph_path),
                          "--coupling", str(coupling_path), "--mooij-kappen"])
        assert exit_code == 0
        assert "Mooij-Kappen" in capsys.readouterr().out


class TestLabelShardedCommand:
    def test_sharded_label_matches_single_process(self, cli_files, capsys):
        graph_path, beliefs_path, coupling_path, _ = cli_files
        single_exit = main([
            "label", "--graph", str(graph_path), "--beliefs",
            str(beliefs_path), "--coupling", str(coupling_path),
            "--epsilon", "0.3"])
        single_out = capsys.readouterr().out
        sharded_exit = main([
            "label", "--graph", str(graph_path), "--beliefs",
            str(beliefs_path), "--coupling", str(coupling_path),
            "--epsilon", "0.3", "--shards", "2",
            "--shard-executor", "sequential"])
        sharded_out = capsys.readouterr().out
        assert single_exit == 0 and sharded_exit == 0
        # identical label assignments and identical convergence summary
        assert sharded_out.splitlines()[1:] == single_out.splitlines()[1:]

    def test_sharded_label_pool_executor_runs(self, cli_files, capsys):
        graph_path, beliefs_path, coupling_path, _ = cli_files
        exit_code = main([
            "label", "--graph", str(graph_path), "--beliefs",
            str(beliefs_path), "--coupling", str(coupling_path),
            "--epsilon", "0.3", "--shards", "2"])
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "left" in captured.out and "right" in captured.out

    def test_sharded_label_rejects_non_linbp_methods(self, cli_files,
                                                     capsys):
        graph_path, beliefs_path, coupling_path, _ = cli_files
        exit_code = main([
            "label", "--graph", str(graph_path), "--beliefs",
            str(beliefs_path), "--coupling", str(coupling_path),
            "--method", "sbp", "--shards", "2"])
        assert exit_code == 2
        assert "LinBP-family" in capsys.readouterr().err

    def test_shards_flag_rejects_nonsense(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args([
                "label", "--graph", "g", "--beliefs", "b",
                "--coupling", "h", "--shards", "0"])
        assert "positive integer" in capsys.readouterr().err


class TestLabelBackendCommand:
    @pytest.mark.parametrize("backend", ["python", "sqlite"])
    @pytest.mark.parametrize("method", ["linbp", "linbp*", "sbp"])
    def test_backend_label_matches_in_memory(self, cli_files, capsys,
                                             method, backend):
        graph_path, beliefs_path, coupling_path, _ = cli_files
        memory_exit = main([
            "label", "--graph", str(graph_path), "--beliefs",
            str(beliefs_path), "--coupling", str(coupling_path),
            "--method", method, "--epsilon", "0.3"])
        memory_out = capsys.readouterr().out
        backend_exit = main([
            "label", "--graph", str(graph_path), "--beliefs",
            str(beliefs_path), "--coupling", str(coupling_path),
            "--method", method, "--epsilon", "0.3",
            "--backend", backend])
        backend_out = capsys.readouterr().out
        assert memory_exit == 0 and backend_exit == 0
        # identical label assignments (the summary line names the backend)
        assert backend_out.splitlines()[1:] == memory_out.splitlines()[1:]

    def test_backend_persists_to_database_file(self, cli_files, capsys):
        graph_path, beliefs_path, coupling_path, tmp_path = cli_files
        database = tmp_path / "graph.db"
        exit_code = main([
            "label", "--graph", str(graph_path), "--beliefs",
            str(beliefs_path), "--coupling", str(coupling_path),
            "--epsilon", "0.3", "--backend", "sqlite",
            "--database", str(database)])
        assert exit_code == 0
        assert database.exists()
        assert "left" in capsys.readouterr().out

    def test_backend_rejects_bp_method(self, cli_files, capsys):
        graph_path, beliefs_path, coupling_path, _ = cli_files
        exit_code = main([
            "label", "--graph", str(graph_path), "--beliefs",
            str(beliefs_path), "--coupling", str(coupling_path),
            "--method", "bp", "--backend", "sqlite"])
        assert exit_code == 2
        assert "no relational form" in capsys.readouterr().err

    def test_backend_rejects_shards(self, cli_files, capsys):
        graph_path, beliefs_path, coupling_path, _ = cli_files
        exit_code = main([
            "label", "--graph", str(graph_path), "--beliefs",
            str(beliefs_path), "--coupling", str(coupling_path),
            "--epsilon", "0.3", "--backend", "sqlite", "--shards", "2"])
        assert exit_code == 2
        assert "mutually exclusive" in capsys.readouterr().err

    def test_backend_flag_rejects_unknown_backend(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            build_parser().parse_args([
                "label", "--graph", "g", "--beliefs", "b",
                "--coupling", "h", "--backend", "postgres"])
        assert excinfo.value.code == 2
        assert "invalid choice" in capsys.readouterr().err

    def test_missing_duckdb_reports_clean_error(self, cli_files, capsys):
        import importlib.util
        if importlib.util.find_spec("duckdb") is not None:
            pytest.skip("duckdb installed; the gating path cannot be hit")
        graph_path, beliefs_path, coupling_path, _ = cli_files
        exit_code = main([
            "label", "--graph", str(graph_path), "--beliefs",
            str(beliefs_path), "--coupling", str(coupling_path),
            "--epsilon", "0.3", "--backend", "duckdb"])
        assert exit_code == 2
        err = capsys.readouterr().err
        assert err.startswith("error:")  # not a traceback
        assert "duckdb" in err


class TestSqlInfoCommand:
    def test_reports_every_backend(self, capsys):
        exit_code = main(["sql-info"])
        out = capsys.readouterr().out
        assert exit_code == 0
        for name in ("python", "sqlite", "duckdb"):
            assert name in out
        assert "SQLite" in out
        # duckdb is either installed or reported unavailable - never an error
        assert "available" in out


class TestBackendsCommand:
    def test_reports_every_array_backend(self, capsys):
        exit_code = main(["backends"])
        out = capsys.readouterr().out
        assert exit_code == 0
        for name in ("numpy", "cupy", "spmm-inplace", "spmm-numba"):
            assert name in out
        assert "float32" in out and "float64" in out
        # numpy is always usable; optional backends report, never error.
        assert "available" in out


class TestLabelPrecision:
    def _flags(self, cli_files):
        graph_path, beliefs_path, coupling_path, _ = cli_files
        return ["label", "--graph", str(graph_path),
                "--beliefs", str(beliefs_path),
                "--coupling", str(coupling_path), "--epsilon", "0.3"]

    @pytest.mark.parametrize("method", ["linbp", "linbp*", "sbp"])
    def test_float32_labels_match_float64(self, cli_files, capsys, method):
        base = self._flags(cli_files) + ["--method", method]
        assert main(base) == 0
        exact = capsys.readouterr().out
        assert main(base + ["--dtype", "float32"]) == 0
        narrow = capsys.readouterr().out
        # Same hard labels either way on this tiny chain.
        assert exact.splitlines()[1:] == narrow.splitlines()[1:]

    def test_auto_precision_prints_the_decision(self, cli_files, capsys):
        flags = self._flags(cli_files)
        assert main(flags + ["--precision", "auto",
                             "--tolerance", "1e-3"]) == 0
        captured = capsys.readouterr()
        assert "precision:" in captured.err
        assert "left" in captured.out and "right" in captured.out

    def test_auto_precision_sharded(self, cli_files, capsys):
        flags = self._flags(cli_files)
        assert main(flags + ["--shards", "2", "--shard-executor",
                             "sequential", "--precision", "auto",
                             "--tolerance", "1e-3"]) == 0
        captured = capsys.readouterr()
        assert "precision:" in captured.err
        assert "left" in captured.out

    def test_dtype_rejected_for_bp(self, cli_files, capsys):
        flags = self._flags(cli_files)
        assert main(flags + ["--method", "bp", "--dtype", "float32"]) == 2
        assert "no linearized form" in capsys.readouterr().err

    def test_dtype_rejected_with_sql_backend(self, cli_files, capsys):
        flags = self._flags(cli_files)
        assert main(flags + ["--backend", "python",
                             "--dtype", "float32"]) == 2
        assert "in-memory engine only" in capsys.readouterr().err

    def test_unknown_dtype_rejected_by_parser(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["label", "--graph", "g", "--beliefs",
                                       "b", "--coupling", "c",
                                       "--dtype", "float16"])


class TestPartitionCommand:
    def test_reports_cut_and_balance(self, cli_files, capsys):
        graph_path, _, _, _ = cli_files
        exit_code = main(["partition", "--graph", str(graph_path),
                          "--shards", "2"])
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "cut edges" in captured.out
        assert "balance" in captured.out
        assert "shard 0" in captured.out

    def test_compare_reports_other_method(self, cli_files, capsys):
        graph_path, _, _, _ = cli_files
        exit_code = main(["partition", "--graph", str(graph_path),
                          "--shards", "3", "--method", "bfs", "--compare"])
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "vs hash" in captured.out

    def test_missing_graph_reports_error(self, tmp_path, capsys):
        exit_code = main(["partition", "--graph", str(tmp_path / "no.tsv"),
                          "--shards", "2"])
        assert exit_code == 2
        assert "error" in capsys.readouterr().err


class TestServeCommand:
    def test_serve_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.port is None
        assert args.window_ms == 2.0
        assert args.max_batch == 16
        assert args.result_ttl == 300.0
        assert args.result_cache_size == 256
        assert args.metrics_port is None

    @pytest.mark.parametrize("flags", [
        ["--window-ms", "-1"],
        ["--window-ms", "nan"],
        ["--window-ms", "soon"],
        ["--max-batch", "0"],
        ["--max-batch", "-3"],
        ["--max-batch", "many"],
        ["--result-ttl", "-5"],
        ["--result-cache-size", "-1"],
        ["--result-cache-size", "lots"],
    ])
    def test_serve_rejects_nonsense_knobs(self, capsys, flags):
        with pytest.raises(SystemExit) as excinfo:
            build_parser().parse_args(["serve", *flags])
        assert excinfo.value.code == 2
        err = capsys.readouterr().err
        assert "expected a" in err  # the argparse type error message

    def test_serve_accepts_zero_cache_size_and_window(self):
        # 0 is meaningful for these knobs (disable caching / coalescing)
        args = build_parser().parse_args(
            ["serve", "--result-cache-size", "0", "--window-ms", "0",
             "--result-ttl", "0"])
        assert args.result_cache_size == 0
        assert args.window_ms == 0.0
        assert args.result_ttl == 0.0

    def test_serve_stdin_mode_processes_requests(self, capsys, monkeypatch):
        import io
        import sys

        requests = "\n".join([
            json.dumps({"op": "load_graph", "name": "g",
                        "edges": [[0, 1], [1, 2]]}),
            json.dumps({"op": "load_coupling", "name": "h",
                        "stochastic": [[0.9, 0.1], [0.1, 0.9]],
                        "epsilon": 0.2}),
            json.dumps({"op": "query", "graph": "g", "coupling": "h",
                        "beliefs": [[0, 0, 0.1]]}),
            json.dumps({"op": "shutdown"}),
        ])
        monkeypatch.setattr(sys, "stdin", io.StringIO(requests))
        exit_code = main(["serve", "--window-ms", "0"])
        captured = capsys.readouterr()
        assert exit_code == 0
        lines = captured.out.splitlines()
        assert lines[0].startswith("ok graph name=g")
        assert lines[2].startswith("ok query method=LinBP")
        assert lines[-1] == "ok bye"
        assert "reading JSON requests" in captured.err

    def test_serve_metrics_port_starts_and_stops_endpoint(self, capsys,
                                                          monkeypatch):
        import io
        import sys

        requests = json.dumps({"op": "shutdown"})
        monkeypatch.setattr(sys, "stdin", io.StringIO(requests))
        exit_code = main(["serve", "--window-ms", "0", "--metrics-port", "0"])
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "metrics on http://127.0.0.1:" in captured.err


class TestStatsCommand:
    @pytest.fixture
    def server(self):
        import threading

        from repro.service import ServiceSession
        from repro.service.server import LineProtocolServer

        server = LineProtocolServer(("127.0.0.1", 0),
                                    ServiceSession(window_seconds=0.0))
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        yield server
        server.shutdown()
        server.server_close()
        thread.join(timeout=5)

    def _load_and_query(self, server):
        import socket

        with socket.create_connection(server.server_address[:2],
                                      timeout=10) as connection:
            stream = connection.makefile("rw", encoding="utf-8")
            for request in (
                    {"op": "load_graph", "name": "g", "edges": [[0, 1], [1, 2]]},
                    {"op": "load_coupling", "name": "h",
                     "stochastic": [[0.9, 0.1], [0.1, 0.9]], "epsilon": 0.2},
                    {"op": "query", "graph": "g", "coupling": "h",
                     "beliefs": [[0, 0, 0.1]]}):
                stream.write(json.dumps(request) + "\n")
                stream.flush()
                assert stream.readline().startswith("ok")

    def test_stats_requires_port(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            build_parser().parse_args(["stats"])
        assert excinfo.value.code == 2

    def test_stats_defaults(self):
        args = build_parser().parse_args(["stats", "--port", "7171"])
        assert args.host == "127.0.0.1"
        assert args.timeout == 5.0
        assert not args.metrics
        assert not args.prometheus
        assert not args.json

    def test_stats_tree_from_live_server(self, server, capsys):
        self._load_and_query(server)
        port = str(server.server_address[1])
        exit_code = main(["stats", "--port", port])
        out = capsys.readouterr().out
        assert exit_code == 0
        assert "queries: 1" in out

    def test_metrics_prometheus_from_live_server(self, server, capsys):
        self._load_and_query(server)
        port = str(server.server_address[1])
        exit_code = main(["stats", "--port", port, "--metrics",
                          "--prometheus"])
        out = capsys.readouterr().out
        assert exit_code == 0
        assert "# TYPE repro_service_queries_total counter" in out
        assert 'repro_service_queries_total{graph="g"} 1' in out

    def test_stats_json_is_the_raw_reply(self, server, capsys):
        port = str(server.server_address[1])
        exit_code = main(["stats", "--port", port, "--json"])
        out = capsys.readouterr().out
        assert exit_code == 0
        reply = json.loads(out)
        assert reply["ok"] is True
        assert "stats" in reply

    def test_unreachable_server_reports_error(self, capsys):
        import socket

        # Grab a free port, close it, and point the CLI at the dead port.
        with socket.socket() as probe:
            probe.bind(("127.0.0.1", 0))
            dead_port = probe.getsockname()[1]
        exit_code = main(["stats", "--port", str(dead_port),
                          "--timeout", "0.5"])
        captured = capsys.readouterr()
        assert exit_code == 2
        assert "cannot reach" in captured.err


class TestExperimentCommand:
    def test_fig6a_experiment_runs(self, capsys, tmp_path):
        output = tmp_path / "fig6a.txt"
        exit_code = main(["experiment", "fig6a", "--output", str(output)])
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "Fig. 6a" in captured.out
        assert output.exists()

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            main(["experiment", "does-not-exist"])


def _fresh_artifact(tmp_path, **service_overrides):
    service = {
        "shards": 1, "shard_method": "bfs", "shard_executor": "sequential",
        "window_ms": 0.0, "max_batch": 16, "result_cache_size": 256,
        "result_ttl_seconds": 300.0, "snapshot_history": 4,
        "incremental_repartition": True, "repartition_drift": None,
    }
    service.update(service_overrides)
    path = tmp_path / "tuned.json"
    path.write_text(json.dumps({
        "version": 1, "kind": "repro-serving-config", "service": service,
        "query": {"dtype": "float64", "precision": "strict",
                  "tolerance": 1e-8},
    }))
    return path


class TestServeConfig:
    def test_serve_config_loads_artifact(self, capsys, monkeypatch, tmp_path):
        import io
        import sys

        artifact = _fresh_artifact(tmp_path)
        requests = "\n".join([
            json.dumps({"op": "load_graph", "name": "g",
                        "edges": [[0, 1], [1, 2]]}),
            json.dumps({"op": "load_coupling", "name": "h",
                        "stochastic": [[0.9, 0.1], [0.1, 0.9]],
                        "epsilon": 0.2}),
            json.dumps({"op": "query", "graph": "g", "coupling": "h",
                        "beliefs": [[0, 0, 0.1]]}),
            json.dumps({"op": "shutdown"}),
        ])
        monkeypatch.setattr(sys, "stdin", io.StringIO(requests))
        exit_code = main(["serve", "--config", str(artifact)])
        captured = capsys.readouterr()
        assert exit_code == 0
        assert f"configuration from {artifact}" in captured.err
        assert "ok query method=LinBP" in captured.out

    def test_serve_config_refuses_knob_flag_mix(self, capsys, tmp_path):
        artifact = _fresh_artifact(tmp_path)
        exit_code = main(["serve", "--config", str(artifact),
                          "--max-batch", "4"])
        captured = capsys.readouterr()
        assert exit_code == 2
        assert "--config replaces --max-batch" in captured.err

    def test_serve_config_rejects_bad_artifact(self, capsys, tmp_path):
        path = tmp_path / "tuned.json"
        path.write_text(json.dumps({
            "version": 1, "service": {"batch_window": 2.0}}))
        exit_code = main(["serve", "--config", str(path)])
        captured = capsys.readouterr()
        assert exit_code == 2
        assert "batch_window" in captured.err
        assert "window_ms" in captured.err


class TestTuneCommands:
    """``repro tune`` / ``repro ablate`` end to end, at tiny sizes."""

    ARGS = ["--nodes", "60", "--clients", "2", "--requests-per-client", "3",
            "--max-iterations", "10", "--seed", "0"]

    def test_ablate_renders_ranked_report(self, capsys, tmp_path):
        report_path = tmp_path / "report.json"
        exit_code = main(["ablate", *self.ARGS, "--json", str(report_path)])
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "Ablation report" in captured.out
        assert "baseline run-" in captured.out
        # Sharded moves are gated out on a 60-node graph, with reasons.
        assert "skipped" in captured.out
        document = json.loads(report_path.read_text())
        assert document["version"] == 1
        assert document["kind"] == "repro-ablation-report"
        assert document["baseline"]["status"] == "ok"
        names = [entry["name"] for entry in document["parameters"]]
        assert "window_ms" in names and "tolerance" in names

    def test_tune_emits_consumable_artifact(self, capsys, tmp_path):
        from repro.service import PropagationService

        output = tmp_path / "tuned.json"
        exit_code = main(["tune", *self.ARGS, "--rounds", "1",
                          "--output", str(output)])
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "selected run-" in captured.out
        assert f"repro serve --config {output}" in captured.out
        artifact = json.loads(output.read_text())
        assert artifact["kind"] == "repro-serving-config"
        # The headline guarantee: the emitted artifact must feed straight
        # back into the serving layer.
        service = PropagationService.from_config(artifact)
        try:
            assert service.default_spec is not None
        finally:
            service.close()

    def test_tune_engine_workload(self, capsys, tmp_path):
        output = tmp_path / "tuned.json"
        exit_code = main(["tune", *self.ARGS, "--workload", "engine",
                          "--rounds", "1", "--output", str(output)])
        assert exit_code == 0
        assert output.exists()

    def test_tune_defaults(self):
        args = build_parser().parse_args(["tune"])
        assert args.rounds == 2
        assert args.margin == 0.02
        assert str(args.output) == "tuned.json"
        assert args.workload == "mixed"
        args = build_parser().parse_args(["ablate"])
        assert args.json is None
        assert args.run_timeout == 120.0
