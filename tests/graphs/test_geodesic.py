"""Unit tests for geodesic numbers, A*, and shortest-path weights (Section 6)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.graphs import (
    UNREACHABLE,
    Graph,
    chain_graph,
    geodesic_levels,
    geodesic_numbers,
    modified_adjacency,
    sbp_example_graph,
    shortest_path_weights,
    star_graph,
    torus_graph,
)


class TestGeodesicNumbers:
    def test_labeled_nodes_have_zero(self):
        numbers = geodesic_numbers(chain_graph(5), [2])
        assert numbers[2] == 0

    def test_chain_distances(self):
        numbers = geodesic_numbers(chain_graph(5), [0])
        assert numbers.tolist() == [0, 1, 2, 3, 4]

    def test_multi_source_takes_minimum(self):
        numbers = geodesic_numbers(chain_graph(5), [0, 4])
        assert numbers.tolist() == [0, 1, 2, 1, 0]

    def test_unreachable_marked(self):
        graph = Graph.from_edges([(0, 1)], num_nodes=4)
        numbers = geodesic_numbers(graph, [0])
        assert numbers[2] == UNREACHABLE and numbers[3] == UNREACHABLE

    def test_no_labels_all_unreachable(self):
        numbers = geodesic_numbers(chain_graph(3), [])
        assert np.all(numbers == UNREACHABLE)

    def test_out_of_range_label_rejected(self):
        with pytest.raises(ValidationError):
            geodesic_numbers(chain_graph(3), [7])

    def test_example_16_geodesic_number(self):
        # Fig. 5b: v1 has geodesic number 2 with v2 and v7 labeled.
        numbers = geodesic_numbers(sbp_example_graph(), [1, 6])
        assert numbers[0] == 2
        assert numbers[1] == 0 and numbers[6] == 0
        # v3, v4, v6 are direct neighbours of a labeled node.
        assert numbers[2] == 1 and numbers[3] == 1 and numbers[5] == 1
        assert numbers[4] == 2


class TestGeodesicLevels:
    def test_levels_partition_reachable_nodes(self):
        levels = geodesic_levels(chain_graph(5), [0])
        assert [level.tolist() for level in levels.levels] == [[0], [1], [2], [3], [4]]
        assert levels.max_level == 4
        assert levels.unreachable.size == 0

    def test_nodes_at_out_of_range_level(self):
        levels = geodesic_levels(chain_graph(3), [0])
        assert levels.nodes_at(99).size == 0

    def test_unreachable_listed(self):
        graph = Graph.from_edges([(0, 1)], num_nodes=3)
        levels = geodesic_levels(graph, [0])
        assert levels.unreachable.tolist() == [2]


class TestModifiedAdjacency:
    def test_example_18_matrix(self):
        """The modified adjacency A* of Example 18 (v2, v7 labeled).

        Note: the matrix printed in the paper leaves row v3 empty, but the
        accompanying text states explicitly that A* "contains only one entry
        for v3 -> v1" and Example 16 counts the path v7 -> v3 -> v1 among the
        three shortest paths to v1 — both require the v3 -> v1 entry.  We
        therefore assert the text's (semantically consistent) version, which
        adds A*(v3, v1) = 1 to the printed matrix.
        """
        expected = np.array([
            [0, 0, 0, 0, 0, 0, 0],
            [0, 0, 1, 1, 0, 0, 0],
            [1, 0, 0, 0, 0, 0, 0],
            [1, 0, 0, 0, 1, 0, 0],
            [0, 0, 0, 0, 0, 0, 0],
            [0, 0, 0, 0, 1, 0, 0],
            [0, 0, 1, 0, 0, 1, 0],
        ])
        produced = modified_adjacency(sbp_example_graph(), [1, 6]).toarray()
        assert np.array_equal(produced.astype(int), expected)

    def test_dag_property(self):
        """A* must be acyclic (Lemma 17, claim 1)."""
        graph = torus_graph()
        dag = modified_adjacency(graph, [0, 1, 2]).toarray()
        # Repeated multiplication must nilpotently vanish within n steps.
        power = dag.copy()
        for _ in range(graph.num_nodes):
            power = power @ dag
        assert np.allclose(power, 0.0)

    def test_equal_level_edges_removed(self):
        # In a triangle with one labeled node, the edge between the two
        # distance-1 nodes must disappear.
        graph = Graph.from_edges([(0, 1), (1, 2), (0, 2)])
        dag = modified_adjacency(graph, [0]).toarray()
        assert dag[1, 2] == 0.0 and dag[2, 1] == 0.0
        assert dag[0, 1] == 1.0 and dag[0, 2] == 1.0

    def test_weights_preserved(self):
        graph = Graph.from_edges([(0, 1, 2.5)])
        dag = modified_adjacency(graph, [0]).toarray()
        assert dag[0, 1] == pytest.approx(2.5)

    def test_unreachable_nodes_have_no_edges(self):
        graph = Graph.from_edges([(0, 1), (2, 3)], num_nodes=4)
        dag = modified_adjacency(graph, [0])
        assert dag[2, 3] == 0.0 and dag[3, 2] == 0.0


class TestLevelSlices:
    def test_slices_cover_every_dag_edge_once(self):
        from repro.graphs import level_slices
        levels, slices = level_slices(sbp_example_graph(), [1, 6])
        dag = modified_adjacency(sbp_example_graph(), [1, 6])
        assert sum(block.nnz for block in slices) == dag.nnz

    def test_slice_shapes_match_level_widths(self):
        from repro.graphs import level_slices
        levels, slices = level_slices(chain_graph(5), [0])
        assert [block.shape for block in slices] == [(1, 1)] * 4

    def test_sweep_over_slices_reproduces_sbp(self):
        from repro.coupling import fraud_matrix
        from repro.graphs import level_slices

        graph = sbp_example_graph()
        coupling = fraud_matrix()
        explicit = np.zeros((7, 3))
        explicit[1] = [0.2, -0.1, -0.1]
        explicit[6] = [-0.1, -0.1, 0.2]
        levels, slices = level_slices(graph, [1, 6])
        beliefs = np.zeros_like(explicit)
        beliefs[levels.nodes_at(0)] = explicit[levels.nodes_at(0)]
        previous = beliefs[levels.nodes_at(0)]
        for level, block in enumerate(slices, start=1):
            previous = (block @ previous) @ coupling.residual
            beliefs[levels.nodes_at(level)] = previous
        from repro.core import sbp
        assert np.allclose(beliefs, sbp(graph, coupling, explicit).beliefs,
                           atol=1e-12)


class TestShortestPathWeights:
    def test_example_16_path_multiplicity(self):
        """Example 16: two shortest paths from v2 to v1 and one from v7.

        Regression for the factor-2 case through the sparse per-level
        rewrite (the pre-refactor lil_matrix implementation is preserved in
        repro.core._sbp_reference and compared in the property suite).
        """
        weights = shortest_path_weights(sbp_example_graph(), [1, 6]).toarray()
        # Column 0 corresponds to labeled node v2 (index 1), column 1 to v7.
        assert weights[0, 0] == pytest.approx(2.0)
        assert weights[0, 1] == pytest.approx(1.0)

    def test_example_16_full_matrix_against_reference(self):
        from repro.core._sbp_reference import reference_shortest_path_weights
        produced = shortest_path_weights(sbp_example_graph(), [1, 6]).toarray()
        expected = reference_shortest_path_weights(
            sbp_example_graph(), [1, 6]).toarray()
        assert np.allclose(produced, expected, atol=1e-12)

    def test_star_graph_single_paths(self):
        weights = shortest_path_weights(star_graph(3), [0]).toarray()
        assert np.allclose(weights[1:, 0], 1.0)

    def test_weighted_path_products(self):
        graph = Graph.from_edges([(0, 1, 2.0), (1, 2, 3.0)])
        weights = shortest_path_weights(graph, [0]).toarray()
        assert weights[2, 0] == pytest.approx(6.0)

    def test_duplicate_labels_rejected(self):
        with pytest.raises(ValidationError):
            shortest_path_weights(chain_graph(3), [0, 0])

    def test_labeled_nodes_identity_rows(self):
        weights = shortest_path_weights(chain_graph(4), [0, 3]).toarray()
        assert weights[0, 0] == 1.0 and weights[0, 1] == 0.0
        assert weights[3, 1] == 1.0 and weights[3, 0] == 0.0
