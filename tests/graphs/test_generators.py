"""Unit tests for the graph generators, including the paper's example graphs."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.graphs import (
    binary_tree_graph,
    chain_graph,
    complete_graph,
    geodesic_numbers,
    grid_graph,
    kronecker_graph,
    paper_kronecker_initiator,
    random_graph,
    ring_graph,
    sbp_example_graph,
    star_graph,
    torus_graph,
)


class TestTorusGraph:
    """The Example 20 torus graph must reproduce the paper's numbers exactly."""

    def test_size(self):
        graph = torus_graph()
        assert graph.num_nodes == 8
        assert graph.num_edges == 8

    def test_spectral_radius_matches_paper(self):
        # Example 20 quotes rho(A) ~= 2.414 = 1 + sqrt(2).
        assert torus_graph().spectral_radius() == pytest.approx(1.0 + np.sqrt(2.0),
                                                                abs=1e-9)

    def test_geodesic_structure_of_example_20(self):
        graph = torus_graph()
        numbers = geodesic_numbers(graph, [0, 1, 2])  # v1, v2, v3 labeled
        # v4 (index 3) is three hops away; the inner nodes v5..v8 are closer.
        assert numbers[3] == 3
        assert numbers[4] == 1 and numbers[6] == 1
        assert numbers[7] == 2

    def test_shortest_paths_to_v4(self):
        graph = torus_graph()
        # v4 attaches only to v8; v8 attaches to v5 and v7, which attach to v1, v3.
        neighbors, _ = graph.neighbors(3)
        assert neighbors.tolist() == [7]

    def test_node_names(self):
        graph = torus_graph()
        assert graph.name_of(0) == "v1"
        assert graph.name_of(7) == "v8"


class TestSbpExampleGraph:
    """The Fig. 5a/b graph must match the adjacency matrix printed in Example 18."""

    def test_adjacency_matches_paper(self):
        expected = np.array([
            [0, 0, 1, 1, 0, 0, 0],
            [0, 0, 1, 1, 0, 0, 0],
            [1, 1, 0, 0, 0, 0, 1],
            [1, 1, 0, 0, 1, 0, 0],
            [0, 0, 0, 1, 0, 1, 0],
            [0, 0, 0, 0, 1, 0, 1],
            [0, 0, 1, 0, 0, 1, 0],
        ])
        assert np.array_equal(sbp_example_graph().adjacency.toarray(), expected)

    def test_geodesic_number_of_v1_is_two(self):
        # Example 16: v1 has geodesic number 2 when v2 and v7 are labeled.
        numbers = geodesic_numbers(sbp_example_graph(), [1, 6])
        assert numbers[0] == 2


class TestKroneckerGenerator:
    def test_initiator_shape_and_symmetry(self):
        initiator = paper_kronecker_initiator()
        assert initiator.shape == (3, 3)
        assert np.allclose(initiator, initiator.T)
        assert np.all((initiator >= 0) & (initiator <= 1))

    def test_node_counts_match_fig6a(self):
        assert kronecker_graph(5, seed=1).num_nodes == 243
        assert kronecker_graph(6, seed=1).num_nodes == 729

    def test_edges_grow_with_power(self):
        small = kronecker_graph(5, seed=2)
        large = kronecker_graph(6, seed=2)
        assert large.num_edges > 2 * small.num_edges

    def test_deterministic_given_seed(self):
        assert kronecker_graph(5, seed=3) == kronecker_graph(5, seed=3)

    def test_different_seeds_differ(self):
        assert kronecker_graph(5, seed=3) != kronecker_graph(5, seed=4)

    def test_invalid_power_rejected(self):
        with pytest.raises(ValidationError):
            kronecker_graph(0)

    def test_asymmetric_initiator_rejected(self):
        with pytest.raises(ValidationError):
            kronecker_graph(2, initiator=np.array([[0.5, 0.1], [0.2, 0.5]]))

    def test_invalid_probability_rejected(self):
        with pytest.raises(ValidationError):
            kronecker_graph(2, initiator=np.array([[1.5, 0.1], [0.1, 0.5]]))

    def test_large_power_uses_sampling_path(self):
        graph = kronecker_graph(9, seed=0)  # 19 683 nodes, sampled generator
        assert graph.num_nodes == 3 ** 9
        assert graph.num_edges > 3 ** 9  # denser than a tree


class TestGenericGenerators:
    def test_grid_graph_edge_count(self):
        graph = grid_graph(3, 4)
        assert graph.num_nodes == 12
        assert graph.num_edges == 3 * 3 + 2 * 4  # horizontal + vertical

    def test_grid_graph_periodic_has_more_edges(self):
        assert grid_graph(3, 3, periodic=True).num_edges > grid_graph(3, 3).num_edges

    def test_grid_invalid(self):
        with pytest.raises(ValidationError):
            grid_graph(0, 3)

    def test_ring_graph(self):
        graph = ring_graph(5)
        assert graph.num_edges == 5
        assert all(graph.degree(node) == 2 for node in range(5))

    def test_ring_too_small(self):
        with pytest.raises(ValidationError):
            ring_graph(2)

    def test_chain_graph(self):
        graph = chain_graph(4)
        assert graph.num_edges == 3
        assert graph.degree(0) == 1 and graph.degree(1) == 2

    def test_chain_single_node(self):
        assert chain_graph(1).num_edges == 0

    def test_star_graph(self):
        graph = star_graph(4)
        assert graph.num_nodes == 5
        assert graph.degree(0) == 4

    def test_complete_graph(self):
        graph = complete_graph(5)
        assert graph.num_edges == 10

    def test_binary_tree(self):
        graph = binary_tree_graph(3)
        assert graph.num_nodes == 15
        assert graph.num_edges == 14

    def test_binary_tree_depth_zero(self):
        assert binary_tree_graph(0).num_nodes == 1

    def test_random_graph_determinism(self):
        assert random_graph(30, 0.2, seed=5) == random_graph(30, 0.2, seed=5)

    def test_random_graph_weighted(self):
        graph = random_graph(30, 0.3, seed=5, weighted=True, weight_range=(0.5, 2.0))
        weights = [edge.weight for edge in graph.edges()]
        assert weights and all(0.5 <= w <= 2.0 for w in weights)

    def test_random_graph_probability_bounds(self):
        with pytest.raises(ValidationError):
            random_graph(10, 1.5)
        assert random_graph(10, 0.0).num_edges == 0
