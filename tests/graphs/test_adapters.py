"""Tests for the NetworkX adapters (optional dependency, installed in CI)."""

from __future__ import annotations
import pytest

networkx = pytest.importorskip("networkx")

from repro.exceptions import ValidationError
from repro.graphs import Graph
from repro.graphs.adapters import from_networkx, to_networkx


class TestFromNetworkx:
    def test_basic_conversion(self):
        nx_graph = networkx.Graph()
        nx_graph.add_edge("a", "b", weight=2.0)
        nx_graph.add_edge("b", "c")
        graph, index = from_networkx(nx_graph)
        assert graph.num_nodes == 3
        assert graph.edge_weight(index["a"], index["b"]) == 2.0
        assert graph.edge_weight(index["b"], index["c"]) == 1.0
        assert graph.name_of(index["a"]) == "a"

    def test_node_order_respected(self):
        nx_graph = networkx.path_graph(["x", "y", "z"])
        graph, index = from_networkx(nx_graph, node_order=["z", "y", "x"])
        assert index == {"z": 0, "y": 1, "x": 2}
        assert graph.has_edge(0, 1) and graph.has_edge(1, 2)

    def test_node_order_must_cover_all_nodes(self):
        nx_graph = networkx.path_graph(3)
        with pytest.raises(ValidationError):
            from_networkx(nx_graph, node_order=[0, 1])

    def test_duplicate_node_order_rejected(self):
        nx_graph = networkx.path_graph(2)
        with pytest.raises(ValidationError):
            from_networkx(nx_graph, node_order=[0, 0])

    def test_directed_graph_rejected(self):
        with pytest.raises(ValidationError):
            from_networkx(networkx.DiGraph([(0, 1)]))

    def test_self_loops_dropped(self):
        nx_graph = networkx.Graph()
        nx_graph.add_edge(0, 0)
        nx_graph.add_edge(0, 1)
        graph, _ = from_networkx(nx_graph)
        assert graph.num_edges == 1

    def test_isolated_nodes_kept(self):
        nx_graph = networkx.Graph()
        nx_graph.add_nodes_from([0, 1, 2])
        nx_graph.add_edge(0, 1)
        graph, _ = from_networkx(nx_graph)
        assert graph.num_nodes == 3
        assert graph.degree(2) == 0

    def test_custom_weight_attribute(self):
        nx_graph = networkx.Graph()
        nx_graph.add_edge(0, 1, cost=3.0)
        graph, index = from_networkx(nx_graph, weight_attribute="cost")
        assert graph.edge_weight(index[0], index[1]) == 3.0


class TestToNetworkx:
    def test_roundtrip(self):
        graph = Graph.from_edges([(0, 1, 2.5), (1, 2, 1.0)],
                                 node_names=["a", "b", "c"])
        nx_graph = to_networkx(graph)
        back, index = from_networkx(nx_graph, node_order=list(range(3)))
        assert back == graph
        assert nx_graph[0][1]["weight"] == 2.5
        assert nx_graph.nodes[0]["name"] == "a"

    def test_without_names(self):
        graph = Graph.from_edges([(0, 1)])
        nx_graph = to_networkx(graph)
        assert "name" not in nx_graph.nodes[0]

    def test_algorithms_work_on_converted_graph(self):
        """End-to-end: bring a NetworkX graph in, run LinBP on it."""
        from repro import BeliefMatrix, homophily_matrix, linbp

        nx_graph = networkx.karate_club_graph()
        graph, index = from_networkx(nx_graph)
        explicit = BeliefMatrix.from_labels({index[0]: 0, index[33]: 1},
                                            num_nodes=graph.num_nodes, num_classes=2)
        coupling = homophily_matrix(epsilon=0.5 / graph.spectral_radius() / 0.3)
        result = linbp(graph, coupling, explicit.residuals)
        labels = result.hard_labels()
        assert labels[index[0]] == 0 and labels[index[33]] == 1
        # The two club factions should mostly follow their leaders.
        assert 0 < labels.sum() < graph.num_nodes
