"""Unit tests for the Graph substrate."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.graphs import Edge, Graph


class TestGraphConstruction:
    def test_from_edges_basic(self):
        graph = Graph.from_edges([(0, 1), (1, 2)])
        assert graph.num_nodes == 3
        assert graph.num_edges == 2
        assert graph.num_directed_edges == 4

    def test_from_edges_with_weights(self):
        graph = Graph.from_edges([(0, 1, 2.5), (1, 2, 0.5)])
        assert graph.edge_weight(0, 1) == 2.5
        assert graph.edge_weight(1, 0) == 2.5
        assert graph.is_weighted

    def test_from_edges_unweighted_flag(self):
        graph = Graph.from_edges([(0, 1), (1, 2)])
        assert not graph.is_weighted

    def test_duplicate_edges_sum_weights(self):
        graph = Graph.from_edges([(0, 1, 1.0), (1, 0, 2.0)])
        assert graph.edge_weight(0, 1) == 3.0
        assert graph.num_edges == 1

    def test_edge_objects_accepted(self):
        graph = Graph.from_edges([Edge(0, 1, 1.5), Edge(1, 2)])
        assert graph.edge_weight(0, 1) == 1.5
        assert graph.edge_weight(1, 2) == 1.0

    def test_num_nodes_override(self):
        graph = Graph.from_edges([(0, 1)], num_nodes=5)
        assert graph.num_nodes == 5
        assert graph.degree(4) == 0

    def test_num_nodes_too_small_rejected(self):
        with pytest.raises(ValidationError):
            Graph.from_edges([(0, 4)], num_nodes=3)

    def test_self_loop_rejected(self):
        with pytest.raises(ValidationError):
            Graph.from_edges([(1, 1)])

    def test_negative_node_rejected(self):
        with pytest.raises(ValidationError):
            Graph.from_edges([(-1, 2)])

    def test_non_positive_weight_rejected(self):
        with pytest.raises(ValidationError):
            Graph.from_edges([(0, 1, 0.0)])
        with pytest.raises(ValidationError):
            Graph.from_edges([(0, 1, -1.0)])

    def test_from_matrix_requires_symmetry(self):
        matrix = np.array([[0.0, 1.0], [0.0, 0.0]])
        with pytest.raises(ValidationError):
            Graph(matrix)

    def test_from_matrix_requires_square(self):
        with pytest.raises(ValidationError):
            Graph(np.zeros((2, 3)))

    def test_from_matrix_rejects_negative_weights(self):
        matrix = np.array([[0.0, -1.0], [-1.0, 0.0]])
        with pytest.raises(ValidationError):
            Graph(matrix)

    def test_diagonal_is_dropped(self):
        matrix = np.array([[1.0, 1.0], [1.0, 2.0]])
        graph = Graph(matrix)
        assert graph.edge_weight(0, 0) == 0.0
        assert graph.num_edges == 1

    def test_empty_graph(self):
        graph = Graph.empty(4)
        assert graph.num_nodes == 4
        assert graph.num_edges == 0
        assert list(graph.edges()) == []

    def test_empty_graph_negative_rejected(self):
        with pytest.raises(ValidationError):
            Graph.empty(-1)

    def test_node_names_length_checked(self):
        with pytest.raises(ValidationError):
            Graph.from_edges([(0, 1)], node_names=["a"])

    def test_node_names_used(self):
        graph = Graph.from_edges([(0, 1)], node_names=["alice", "bob"])
        assert graph.name_of(0) == "alice"
        assert graph.name_of(1) == "bob"

    def test_default_node_names(self):
        graph = Graph.from_edges([(0, 1)])
        assert graph.name_of(1) == "v1"


class TestGraphAccessors:
    def test_neighbors(self):
        graph = Graph.from_edges([(0, 1, 2.0), (0, 2, 3.0)])
        neighbors, weights = graph.neighbors(0)
        assert set(neighbors.tolist()) == {1, 2}
        assert sorted(weights.tolist()) == [2.0, 3.0]

    def test_neighbors_out_of_range(self):
        graph = Graph.from_edges([(0, 1)])
        with pytest.raises(ValidationError):
            graph.neighbors(5)

    def test_degree(self):
        graph = Graph.from_edges([(0, 1), (0, 2), (0, 3)])
        assert graph.degree(0) == 3
        assert graph.degree(1) == 1

    def test_degree_vector_squared_weights(self):
        graph = Graph.from_edges([(0, 1, 2.0), (0, 2, 3.0)])
        degrees = graph.degree_vector()
        assert degrees[0] == pytest.approx(4.0 + 9.0)
        assert degrees[1] == pytest.approx(4.0)

    def test_degree_vector_plain_weights(self):
        graph = Graph.from_edges([(0, 1, 2.0), (0, 2, 3.0)])
        degrees = graph.degree_vector(weighted_squares=False)
        assert degrees[0] == pytest.approx(5.0)

    def test_degree_matrix_diagonal(self):
        graph = Graph.from_edges([(0, 1), (1, 2)])
        degree = graph.degree_matrix().toarray()
        assert np.allclose(np.diag(degree), [1.0, 2.0, 1.0])
        assert np.allclose(degree - np.diag(np.diag(degree)), 0.0)

    def test_edges_iteration_each_once(self):
        graph = Graph.from_edges([(0, 1), (1, 2), (0, 2)])
        edges = list(graph.edges())
        assert len(edges) == 3
        assert all(edge.source < edge.target for edge in edges)

    def test_directed_edges_both_directions(self):
        graph = Graph.from_edges([(0, 1)])
        directed = {(e.source, e.target) for e in graph.directed_edges()}
        assert directed == {(0, 1), (1, 0)}

    def test_has_edge(self):
        graph = Graph.from_edges([(0, 1)])
        assert graph.has_edge(0, 1)
        assert graph.has_edge(1, 0)
        assert not graph.has_edge(0, 0)

    def test_len_and_repr(self):
        graph = Graph.from_edges([(0, 1)])
        assert len(graph) == 2
        assert "Graph" in repr(graph)

    def test_spectral_radius_of_single_edge(self):
        graph = Graph.from_edges([(0, 1)])
        assert graph.spectral_radius() == pytest.approx(1.0)


class TestGraphModification:
    def test_with_edges_added(self):
        graph = Graph.from_edges([(0, 1)], num_nodes=4)
        extended = graph.with_edges_added([(2, 3)])
        assert extended.num_edges == 2
        assert graph.num_edges == 1  # original untouched

    def test_with_edges_added_weight_accumulates(self):
        graph = Graph.from_edges([(0, 1, 1.0)])
        extended = graph.with_edges_added([(0, 1, 2.0)])
        assert extended.edge_weight(0, 1) == pytest.approx(3.0)

    def test_scaling_weights(self):
        graph = Graph.from_edges([(0, 1, 2.0)])
        scaled = graph.subgraph_weights_scaled(0.5)
        assert scaled.edge_weight(0, 1) == pytest.approx(1.0)

    def test_scaling_requires_positive_factor(self):
        graph = Graph.from_edges([(0, 1)])
        with pytest.raises(ValidationError):
            graph.subgraph_weights_scaled(0.0)

    def test_equality(self):
        a = Graph.from_edges([(0, 1), (1, 2)])
        b = Graph.from_edges([(1, 2), (0, 1)])
        c = Graph.from_edges([(0, 1)], num_nodes=3)
        assert a == b
        assert a != c
        assert a != "not a graph"
