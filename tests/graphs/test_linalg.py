"""Unit tests for the sparse linear-algebra helpers."""

from __future__ import annotations

import numpy as np
import pytest
import scipy.sparse as sp

from repro.exceptions import ValidationError
from repro.graphs import linalg


class TestSpectralRadius:
    def test_diagonal_matrix(self):
        assert linalg.spectral_radius(np.diag([1.0, -3.0, 2.0])) == pytest.approx(3.0)

    def test_cycle_graph_adjacency(self):
        # The spectral radius of a cycle's adjacency matrix is exactly 2.
        n = 10
        adjacency = np.zeros((n, n))
        for i in range(n):
            adjacency[i, (i + 1) % n] = adjacency[(i + 1) % n, i] = 1.0
        assert linalg.spectral_radius(adjacency) == pytest.approx(2.0, abs=1e-9)

    def test_sparse_and_dense_agree(self):
        rng = np.random.default_rng(0)
        dense = rng.random((40, 40))
        dense = dense + dense.T
        sparse = sp.csr_matrix(dense)
        assert linalg.spectral_radius(sparse) == pytest.approx(
            linalg.spectral_radius(dense), rel=1e-8)

    def test_large_sparse_uses_arpack(self):
        # A 200-node star graph: spectral radius is sqrt(199).
        n = 200
        rows = [0] * (n - 1) + list(range(1, n))
        cols = list(range(1, n)) + [0] * (n - 1)
        adjacency = sp.coo_matrix((np.ones(2 * (n - 1)), (rows, cols)),
                                  shape=(n, n)).tocsr()
        assert linalg.spectral_radius(adjacency) == pytest.approx(np.sqrt(n - 1),
                                                                  rel=1e-6)

    def test_zero_matrix(self):
        assert linalg.spectral_radius(sp.csr_matrix((100, 100))) == 0.0

    def test_empty_matrix(self):
        assert linalg.spectral_radius(np.zeros((0, 0))) == 0.0

    def test_non_square_rejected(self):
        with pytest.raises(ValidationError):
            linalg.spectral_radius(np.zeros((2, 3)))


class TestNorms:
    def test_frobenius(self):
        matrix = np.array([[3.0, 0.0], [0.0, 4.0]])
        assert linalg.frobenius_norm(matrix) == pytest.approx(5.0)
        assert linalg.frobenius_norm(sp.csr_matrix(matrix)) == pytest.approx(5.0)

    def test_induced_1_is_max_column_sum(self):
        matrix = np.array([[1.0, -2.0], [3.0, 4.0]])
        assert linalg.induced_1_norm(matrix) == pytest.approx(6.0)
        assert linalg.induced_1_norm(sp.csr_matrix(matrix)) == pytest.approx(6.0)

    def test_induced_inf_is_max_row_sum(self):
        matrix = np.array([[1.0, -2.0], [3.0, 4.0]])
        assert linalg.induced_inf_norm(matrix) == pytest.approx(7.0)
        assert linalg.induced_inf_norm(sp.csr_matrix(matrix)) == pytest.approx(7.0)

    def test_norms_on_empty_matrices(self):
        empty = sp.csr_matrix((3, 3))
        assert linalg.induced_1_norm(empty) == 0.0
        assert linalg.induced_inf_norm(empty) == 0.0
        assert linalg.frobenius_norm(empty) == 0.0

    def test_minimum_norm_upper_bounds_spectral_radius(self):
        rng = np.random.default_rng(1)
        matrix = rng.standard_normal((15, 15))
        matrix = (matrix + matrix.T) / 2.0
        assert linalg.minimum_norm(matrix) >= linalg.spectral_radius(matrix) - 1e-9


class TestDegrees:
    def test_unweighted_degree(self):
        adjacency = np.array([[0, 1, 1], [1, 0, 0], [1, 0, 0]], dtype=float)
        assert np.allclose(linalg.degree_vector(adjacency), [2.0, 1.0, 1.0])

    def test_weighted_degree_uses_squares(self):
        adjacency = np.array([[0, 2.0], [2.0, 0]])
        assert np.allclose(linalg.degree_vector(adjacency), [4.0, 4.0])
        assert np.allclose(linalg.degree_vector(adjacency, weighted_squares=False),
                           [2.0, 2.0])

    def test_degree_matrix_is_diagonal(self):
        adjacency = sp.csr_matrix(np.array([[0, 1.0], [1.0, 0]]))
        degree = linalg.degree_matrix(adjacency).toarray()
        assert np.allclose(degree, np.eye(2))


class TestSymmetryAndKron:
    def test_is_symmetric(self):
        assert linalg.is_symmetric(np.array([[0.0, 1.0], [1.0, 0.0]]))
        assert not linalg.is_symmetric(np.array([[0.0, 1.0], [0.0, 0.0]]))
        assert not linalg.is_symmetric(np.zeros((2, 3)))

    def test_is_symmetric_sparse(self):
        matrix = sp.csr_matrix(np.array([[0.0, 2.0], [2.0, 0.0]]))
        assert linalg.is_symmetric(matrix)

    def test_kron_spectral_radius_product_rule(self):
        # rho(H (x) A) = rho(H) * rho(A) for the LinBP* criterion.
        coupling = np.array([[0.1, -0.1], [-0.1, 0.1]])
        adjacency = np.array([[0, 1, 0], [1, 0, 1], [0, 1, 0]], dtype=float)
        expected = linalg.spectral_radius(coupling) * linalg.spectral_radius(adjacency)
        assert linalg.kron_spectral_radius(coupling, adjacency) == pytest.approx(
            expected, rel=1e-8)

    def test_kron_spectral_radius_with_echo_term(self):
        coupling = np.array([[0.1, -0.1], [-0.1, 0.1]])
        adjacency = np.array([[0, 1.0], [1.0, 0]])
        degree = np.eye(2)
        with_echo = linalg.kron_spectral_radius(coupling, adjacency, degree=degree)
        without = linalg.kron_spectral_radius(coupling, adjacency)
        assert with_echo != pytest.approx(without)

    def test_to_csr_and_to_dense_roundtrip(self):
        dense = np.array([[0.0, 1.5], [1.5, 0.0]])
        sparse = linalg.to_csr(dense)
        assert sp.issparse(sparse)
        assert np.allclose(linalg.to_dense(sparse), dense)
