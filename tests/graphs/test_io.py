"""Unit tests for edge-list and belief-table I/O."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.graphs import (
    Graph,
    read_belief_table,
    read_edge_list,
    write_belief_table,
    write_edge_list,
)


class TestEdgeListIO:
    def test_roundtrip_unweighted(self, tmp_path):
        graph = Graph.from_edges([(0, 1), (1, 2), (2, 3)])
        path = tmp_path / "edges.tsv"
        write_edge_list(graph, path)
        assert read_edge_list(path) == graph

    def test_roundtrip_weighted(self, tmp_path):
        graph = Graph.from_edges([(0, 1, 0.25), (1, 2, 3.5)])
        path = tmp_path / "edges.tsv"
        write_edge_list(graph, path)
        loaded = read_edge_list(path)
        assert loaded.edge_weight(0, 1) == pytest.approx(0.25)
        assert loaded.edge_weight(1, 2) == pytest.approx(3.5)

    def test_force_weights_on_unweighted(self, tmp_path):
        graph = Graph.from_edges([(0, 1)])
        path = tmp_path / "edges.tsv"
        write_edge_list(graph, path, include_weights=True)
        content = path.read_text()
        assert "1.0" in content

    def test_comments_and_blank_lines_ignored(self, tmp_path):
        path = tmp_path / "edges.txt"
        path.write_text("# a comment\n\n0 1\n1 2 2.0\n")
        graph = read_edge_list(path)
        assert graph.num_edges == 2
        assert graph.edge_weight(1, 2) == pytest.approx(2.0)

    def test_bad_column_count_rejected(self, tmp_path):
        path = tmp_path / "edges.txt"
        path.write_text("0 1 2 3\n")
        with pytest.raises(ValidationError):
            read_edge_list(path)

    def test_num_nodes_override(self, tmp_path):
        path = tmp_path / "edges.txt"
        path.write_text("0 1\n")
        graph = read_edge_list(path, num_nodes=10)
        assert graph.num_nodes == 10

    def test_custom_delimiter(self, tmp_path):
        graph = Graph.from_edges([(0, 1)])
        path = tmp_path / "edges.csv"
        write_edge_list(graph, path, delimiter=",")
        assert read_edge_list(path, delimiter=",") == graph


class TestBeliefTableIO:
    def test_roundtrip(self, tmp_path):
        beliefs = np.zeros((4, 3))
        beliefs[1] = [0.1, -0.05, -0.05]
        beliefs[3] = [-0.02, 0.04, -0.02]
        path = tmp_path / "beliefs.tsv"
        write_belief_table(beliefs, path)
        loaded = read_belief_table(path, num_nodes=4, num_classes=3)
        assert np.allclose(loaded, beliefs)

    def test_zero_rows_skipped(self, tmp_path):
        beliefs = np.zeros((3, 2))
        beliefs[0] = [0.1, -0.1]
        path = tmp_path / "beliefs.tsv"
        write_belief_table(beliefs, path)
        lines = [line for line in path.read_text().splitlines() if line.strip()]
        assert len(lines) == 2  # only node 0, one line per class

    def test_keep_zero_rows(self, tmp_path):
        beliefs = np.zeros((2, 2))
        path = tmp_path / "beliefs.tsv"
        write_belief_table(beliefs, path, skip_zero_rows=False)
        lines = [line for line in path.read_text().splitlines() if line.strip()]
        assert len(lines) == 4

    def test_out_of_range_node_rejected(self, tmp_path):
        path = tmp_path / "beliefs.tsv"
        path.write_text("9\t0\t0.5\n")
        with pytest.raises(ValidationError):
            read_belief_table(path, num_nodes=3, num_classes=2)

    def test_out_of_range_class_rejected(self, tmp_path):
        path = tmp_path / "beliefs.tsv"
        path.write_text("0\t5\t0.5\n")
        with pytest.raises(ValidationError):
            read_belief_table(path, num_nodes=3, num_classes=2)

    def test_wrong_arity_rejected(self, tmp_path):
        path = tmp_path / "beliefs.tsv"
        path.write_text("0\t1\n")
        with pytest.raises(ValidationError):
            read_belief_table(path, num_nodes=3, num_classes=2)

    def test_non_2d_matrix_rejected(self, tmp_path):
        with pytest.raises(ValidationError):
            write_belief_table(np.zeros(3), tmp_path / "beliefs.tsv")
