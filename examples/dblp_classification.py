#!/usr/bin/env python3
"""Research-area classification on a DBLP-like heterogeneous graph (Fig. 11).

A bibliographic network connects papers to their authors, conferences and
title terms.  Only ~10 % of the nodes carry a research-area label (AI, DB,
DM, IR); homophily over the co-occurrence structure lets the propagation
algorithms label the rest.  This example reproduces the paper's DBLP workflow
on the synthetic generator (the original snapshot is not redistributable):

1. generate the heterogeneous graph with a planted 4-class structure,
2. sweep the coupling scale and report the F1 agreement of LinBP / LinBP* /
   SBP with standard BP (the paper's Fig. 11b),
3. report accuracy against the planted ground truth, broken down by node type.

Run with::

    python examples/dblp_classification.py
"""

from __future__ import annotations

import numpy as np

from repro.core import belief_propagation, linbp, sbp
from repro.datasets import generate_dblp_like
from repro.datasets.dblp import CLASS_NAMES, NODE_TYPES
from repro.experiments import run_dblp_quality
from repro.metrics import labeling_accuracy


def main() -> None:
    dataset = generate_dblp_like(num_papers=1200, num_authors=700,
                                 num_conferences=16, num_terms=320, seed=2)
    description = dataset.describe()
    print("DBLP-like workload:", description)
    print()

    # Fig. 11b: F1 of the linearized methods against BP across epsilon.
    table = run_dblp_quality(dataset=dataset, epsilons=[1e-5, 1e-4, 1e-3])
    print(table.to_text())
    print()

    # A closer look at one convergent scale: accuracy per node type.
    coupling = dataset.coupling.scaled(1e-3)
    explicit = dataset.explicit
    labeled = np.nonzero(np.any(explicit != 0.0, axis=1))[0]
    unlabeled = np.setdiff1d(np.arange(dataset.graph.num_nodes), labeled)
    results = {
        "BP": belief_propagation(dataset.graph, coupling, explicit),
        "LinBP": linbp(dataset.graph, coupling, explicit),
        "SBP": sbp(dataset.graph, coupling, explicit),
    }
    print(f"accuracy against the planted ground truth (unlabeled nodes only):")
    header = "method  " + "".join(f"{name:>12}" for name in NODE_TYPES) + f"{'all':>12}"
    print(header)
    for name, result in results.items():
        predicted = result.hard_labels()
        row = f"{name:<8}"
        for type_index in range(len(NODE_TYPES)):
            nodes = [node for node in unlabeled
                     if dataset.node_types[node] == type_index]
            row += f"{labeling_accuracy(dataset.true_labels, predicted, nodes):>12.3f}"
        row += f"{labeling_accuracy(dataset.true_labels, predicted, unlabeled):>12.3f}"
        print(row)

    # Show a few concrete predictions for unlabeled papers.
    linbp_labels = results["LinBP"].hard_labels()
    papers = [node for node in unlabeled if dataset.node_types[node] == 0][:6]
    print("\nsample predictions for unlabeled papers (LinBP):")
    for paper in papers:
        print(f"  paper {paper:>5}: predicted {CLASS_NAMES[linbp_labels[paper]]:<4} "
              f"(true {CLASS_NAMES[dataset.true_labels[paper]]})")


if __name__ == "__main__":
    main()
