#!/usr/bin/env python3
"""Quickstart: label the nodes of a small social network with LinBP.

The scenario is the paper's introductory example (Fig. 1a): we know the
political leaning of three people in a 12-person friendship network, we
assume homophily ("birds of a feather flock together"), and we want the most
likely leaning of everyone else.

The script prints, in order:

1. the convergence report for the network — its spectral radius and the
   largest coupling scale that Lemma 8 guarantees to converge — next to the
   scale actually chosen;
2. the LinBP result summary (iterations until convergence, final delta) and
   a table with one row per person: predicted leaning (labeled people are
   marked "(known)") and the residual belief vector (Democrat, Republican);
3. the agreement between single-pass SBP and LinBP on the predicted labels
   (the two disagree on nodes whose beliefs are nearly tied — typically
   SBP matches LinBP on roughly 90 % of this small network) together with
   every node's geodesic number.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro import BeliefMatrix, Graph, homophily_matrix, linbp, sbp
from repro.core import convergence


def build_friendship_network() -> Graph:
    """A hand-crafted 12-person friendship network with two communities."""
    edges = [
        # the "campus" community
        (0, 1), (0, 2), (1, 2), (1, 3), (2, 3), (3, 4), (4, 5), (2, 5),
        # the "downtown" community
        (6, 7), (6, 8), (7, 8), (8, 9), (9, 10), (10, 11), (8, 11), (7, 10),
        # a few bridges between the communities
        (4, 6), (5, 9),
    ]
    names = ["alice", "bob", "carol", "dave", "erin", "frank",
             "grace", "heidi", "ivan", "judy", "kai", "luis"]
    return Graph.from_edges(edges, num_nodes=12, node_names=names)


def main() -> None:
    graph = build_friendship_network()

    # Two classes: Democrat (0) and Republican (1), homophily coupling of
    # Fig. 1a.  We only know the leaning of three people.
    coupling = homophily_matrix(epsilon=0.4)
    explicit = BeliefMatrix.from_labels({0: 0, 3: 0, 9: 1},
                                        num_nodes=graph.num_nodes, num_classes=2,
                                        magnitude=0.1)

    # Check the convergence guarantee before running (Lemma 9 / Lemma 8).
    report = convergence.analyze(graph, coupling.scaled(1.0))
    print(f"spectral radius of the network: {report.spectral_radius_adjacency:.3f}")
    print(f"largest safe coupling scale (exact, Lemma 8): "
          f"{report.exact_threshold_linbp:.3f}")
    print(f"chosen coupling scale: {coupling.epsilon}")
    print()

    # LinBP: the paper's linearized BP with convergence guarantees.
    result = linbp(graph, coupling, explicit.residuals)
    print(result.summary())
    print()
    print(f"{'person':<8} {'leaning':<12} {'residual beliefs (D, R)'}")
    for node in range(graph.num_nodes):
        label = "Democrat" if result.hard_labels()[node] == 0 else "Republican"
        known = " (known)" if node in (0, 3, 9) else ""
        beliefs = np.round(result.beliefs[node], 4)
        print(f"{graph.name_of(node):<8} {label + known:<12} {beliefs}")

    # SBP needs only a single pass and agrees with LinBP on most nodes
    # (it can differ where beliefs are nearly tied).
    sbp_result = sbp(graph, coupling, explicit.residuals)
    agreement = np.mean(sbp_result.hard_labels() == result.hard_labels())
    print()
    print(f"SBP agrees with LinBP on {agreement:.0%} of the nodes "
          f"(geodesic numbers: {sbp_result.extra['geodesic_numbers'].tolist()})")


if __name__ == "__main__":
    main()
