#!/usr/bin/env python3
"""Running LinBP and SBP inside a relational engine (Section 5.3 / 6.3).

The paper's practical pitch to the database community is that both LinBP and
SBP need nothing beyond standard SQL: joins, group-by aggregates, and a loop.
This example walks through that pipeline on the bundled in-memory relational
engine:

1. load the network, explicit beliefs and coupling matrix into the relations
   ``A(s,t,w)``, ``E(v,c,b)``, ``H(c1,c2,h)``,
2. derive ``D(v,d)`` and ``H2(c1,c2,h)`` with aggregate queries (Eq. 20),
3. run Algorithm 1 (LinBP) and Algorithm 2 (SBP),
4. answer the final "top belief per node" query of Fig. 9b,
5. apply an incremental label update with Algorithm 3 and show that only part
   of the ``B`` relation changes.

Run with::

    python examples/sql_style_pipeline.py
"""

from __future__ import annotations

import numpy as np

from repro import BeliefMatrix, fraud_matrix
from repro.graphs import random_graph
from repro.relational import (
    RelationalSBP,
    add_explicit_beliefs_sql,
    adjacency_table,
    coupling_squared_table,
    coupling_table,
    degree_table,
    explicit_belief_table,
    linbp_sql,
    top_belief_query,
)

CLASS_NAMES = ("honest", "accomplice", "fraudster")


def main() -> None:
    graph = random_graph(80, 0.06, seed=21)
    coupling = fraud_matrix(epsilon=0.05)
    explicit = BeliefMatrix.from_labels({1: 0, 12: 0, 30: 1, 55: 2, 70: 2},
                                        num_nodes=graph.num_nodes, num_classes=3,
                                        magnitude=0.1)

    # Step 1-2: the base and derived relations.
    relation_a = adjacency_table(graph)
    relation_e = explicit_belief_table(explicit.residuals)
    relation_h = coupling_table(coupling)
    relation_d = degree_table(relation_a)
    relation_h2 = coupling_squared_table(relation_h)
    print("relations loaded:")
    for relation in (relation_a, relation_e, relation_h, relation_d, relation_h2):
        print(f"  {relation.name}({', '.join(relation.columns)}): "
              f"{relation.num_rows} rows")
    print()

    # Step 3a: Algorithm 1 — LinBP with joins + aggregates, 10 iterations.
    linbp_result = linbp_sql(graph, coupling, explicit.residuals,
                             num_iterations=10)
    print(f"Algorithm 1 (LinBP in SQL): {linbp_result.iterations} iterations, "
          f"rows processed per iteration: "
          f"{linbp_result.extra['rows_processed_per_iteration'][:3]} ...")

    # Step 3b: Algorithm 2 — SBP, a single pass over geodesic levels.
    sbp_runner = RelationalSBP(graph, coupling)
    sbp_result = sbp_runner.run(explicit.residuals)
    levels = sbp_result.extra["geodesic_numbers"]
    print(f"Algorithm 2 (SBP in SQL): {int(levels.max())} geodesic levels, "
          f"G relation holds {sbp_runner.relation_g.num_rows} nodes")
    print()

    # Step 4: the Fig. 9b top-belief query on the SBP result.
    top = top_belief_query(sbp_runner.relation_b)
    print("sample of the top-belief query (Fig. 9b) on the SBP result:")
    for node in sorted(top)[:8]:
        classes = ", ".join(CLASS_NAMES[c] for c in sorted(top[node]))
        print(f"  node {node:>3} -> {classes}")
    print()

    # Step 5: Algorithm 3 — an analyst labels two more accounts.
    update = BeliefMatrix.from_labels({40: 1, 64: 0}, num_nodes=graph.num_nodes,
                                      num_classes=3, magnitude=0.1)
    before = sbp_result.beliefs.copy()
    updated = add_explicit_beliefs_sql(sbp_runner, update.residuals)
    changed = np.count_nonzero(np.any(np.abs(updated.beliefs - before) > 1e-15,
                                      axis=1))
    print(f"Algorithm 3 (incremental labels): {updated.extra['nodes_updated']} nodes "
          f"re-derived, {changed} beliefs actually changed "
          f"out of {graph.num_nodes} nodes")
    agreement = np.allclose(
        updated.beliefs,
        RelationalSBP(graph, coupling).run(explicit.residuals
                                           + update.residuals).beliefs,
        atol=1e-12)
    print(f"identical to recomputing from scratch: {agreement}")


if __name__ == "__main__":
    main()
