#!/usr/bin/env python3
"""Convergence analysis: when does LinBP converge, and how sharp is Lemma 8?

The paper's main theoretical payoff is an *exact* convergence criterion:
LinBP converges if and only if ``ρ(Ĥ⊗A − Ĥ²⊗D) < 1`` (Lemma 8), with cheaper
sufficient bounds via matrix norms (Lemma 9).  This example

1. reproduces the Example 20 thresholds on the paper's torus graph,
2. sweeps the coupling scale across the threshold and shows that the
   iteration's behaviour flips exactly where Lemma 8 predicts,
3. compares the exact criterion, the norm bounds, and the Mooij–Kappen
   sufficient bound for standard BP (Appendix G) on a Kronecker graph.

Run with::

    python examples/convergence_analysis.py
"""

from __future__ import annotations

from repro.core import convergence, linbp
from repro.experiments import run_bound_comparison, torus_workload


def torus_thresholds() -> None:
    graph, coupling, explicit = torus_workload()
    report = convergence.analyze(graph, coupling)
    print("Example 20 (8-node torus, Fig. 1c coupling):")
    print(f"  rho(A)                     = {report.spectral_radius_adjacency:.4f}")
    print(f"  rho(Ho)                    = {report.spectral_radius_coupling_unscaled:.4f}")
    print(f"  exact threshold, LinBP     = {report.exact_threshold_linbp:.4f}  (paper: 0.488)")
    print(f"  exact threshold, LinBP*    = {report.exact_threshold_linbp_star:.4f}  (paper: 0.658)")
    print(f"  norm bound, LinBP          = {report.sufficient_threshold_linbp:.4f}  (paper: 0.360)")
    print(f"  norm bound, LinBP*         = {report.sufficient_threshold_linbp_star:.4f}  (paper: 0.455)")
    print()
    print("sweeping epsilon_H across the LinBP threshold:")
    print(f"  {'epsilon':>8} {'Lemma 8 predicts':>17} {'iteration behaviour':>20}")
    for epsilon in (0.3, 0.45, 0.48, 0.50, 0.55, 0.65):
        predicted = "converges" if report.converges_linbp(epsilon) else "diverges"
        result = linbp(graph, coupling.scaled(epsilon), explicit,
                       max_iterations=3000)
        if result.converged:
            observed = f"converged ({result.iterations} it)"
        else:
            growing = result.residual_history[-1] > result.residual_history[0]
            observed = "diverging" if growing else "not converged yet"
        print(f"  {epsilon:>8.2f} {predicted:>17} {observed:>20}")
    print()


def bound_comparison() -> None:
    print("Appendix G: exact LinBP thresholds vs the Mooij-Kappen BP bound")
    table = run_bound_comparison(max_index=2)
    print(table.to_text())
    print()
    print("On these graphs the LinBP criteria admit a wider range of coupling "
          "strengths than the sufficient BP bound, matching the paper's "
          "multi-class observation c(H) > rho(H_hat).")


def main() -> None:
    torus_thresholds()
    bound_comparison()


if __name__ == "__main__":
    main()
