#!/usr/bin/env python3
"""Incremental maintenance with SBP on a dynamic network.

SBP's nearest-labeled-neighbour semantics makes it cheap to maintain when the
graph changes (Section 6.3 / Appendix C of the paper):

* when an analyst labels new accounts, Algorithm 3 repairs only the region of
  the graph whose nearest labeled neighbour changed;
* when new edges appear, Algorithm 4 repairs only the nodes whose shortest
  path to a label got shorter (or gained a new shortest path).

This example simulates a stream of label- and edge-updates on a Kronecker
graph and compares the incremental cost (nodes touched) with recomputation
from scratch, verifying at every step that both produce identical beliefs.

Run with::

    python examples/incremental_updates.py
"""

from __future__ import annotations

import time

import numpy as np

from repro.core import SBP, sbp
from repro.datasets import kronecker_suite, sample_explicit_beliefs, sample_explicit_nodes


def main() -> None:
    workload = kronecker_suite(max_index=3, seed=1)[2]
    graph = workload.graph
    coupling = workload.coupling.scaled(0.01)
    print(f"graph #3 of the synthetic suite: {graph.num_nodes} nodes, "
          f"{graph.num_edges} edges")

    # Start with 2 % of the nodes labeled.
    initial_nodes = sample_explicit_nodes(graph.num_nodes, 0.02, seed=3)
    explicit = sample_explicit_beliefs(graph.num_nodes, 3, initial_nodes, seed=4)
    runner = SBP(graph, coupling)
    start = time.perf_counter()
    runner.run(explicit)
    print(f"initial SBP run: {time.perf_counter() - start:.3f}s, "
          f"{len(initial_nodes)} labeled nodes\n")

    rng = np.random.default_rng(9)
    print(f"{'step':<6} {'update':<22} {'nodes repaired':>14} "
          f"{'incremental [s]':>16} {'from scratch [s]':>17} {'identical':>10}")
    cumulative_explicit = explicit.copy()
    for step in range(1, 6):
        if step % 2 == 1:
            # Label three new random nodes.
            new_nodes = sample_explicit_nodes(graph.num_nodes, 3 / graph.num_nodes,
                                              seed=100 + step,
                                              exclude=np.nonzero(
                                                  np.any(cumulative_explicit != 0,
                                                         axis=1))[0].tolist())
            update = sample_explicit_beliefs(graph.num_nodes, 3, new_nodes,
                                             seed=200 + step)
            cumulative_explicit += update
            start = time.perf_counter()
            result = runner.add_explicit_beliefs(
                {int(node): update[node] for node in new_nodes})
            incremental_seconds = time.perf_counter() - start
            description = f"+{len(new_nodes)} labels"
        else:
            # Insert five new random edges.
            new_edges = []
            while len(new_edges) < 5:
                source, target = rng.integers(0, graph.num_nodes, size=2)
                if source != target and not runner.graph.has_edge(int(source),
                                                                  int(target)):
                    new_edges.append((int(source), int(target)))
            start = time.perf_counter()
            result = runner.add_edges(new_edges)
            incremental_seconds = time.perf_counter() - start
            description = f"+{len(new_edges)} edges"
        # Reference: recompute from scratch on the current graph and labels.
        start = time.perf_counter()
        scratch = sbp(runner.graph, coupling, cumulative_explicit)
        scratch_seconds = time.perf_counter() - start
        identical = np.allclose(result.beliefs, scratch.beliefs, atol=1e-10)
        print(f"{step:<6} {description:<22} {result.extra['nodes_updated']:>14} "
              f"{incremental_seconds:>16.4f} {scratch_seconds:>17.4f} "
              f"{str(identical):>10}")

    print("\nincremental updates touch only a small part of the graph and stay "
          "bit-compatible with recomputation.")


if __name__ == "__main__":
    main()
