#!/usr/bin/env python3
"""Learning the coupling matrix from partially labeled data (footnote 1).

The paper assumes the heterophily matrix ``H`` is supplied by domain experts
and leaves learning it from data as future work.  This example shows the
extension implemented in :mod:`repro.core.estimation` end to end on the
auction-fraud scenario:

1. generate the honest / accomplice / fraudster transaction network,
2. pretend an analyst has investigated 15 % of the accounts,
3. estimate the coupling matrix from the edges between investigated accounts,
4. compare it with the paper's Fig. 1c expert matrix, and
5. run LinBP with both matrices and compare the resulting accuracy.

Run with::

    python examples/learning_the_coupling.py
"""

from __future__ import annotations

import sys
from pathlib import Path

import numpy as np

from repro import BeliefMatrix, fraud_matrix, linbp
from repro.core import convergence, estimate_coupling
from repro.metrics import labeling_accuracy

# Allow running from any working directory: the auction-network generator
# lives in the sibling example script.
sys.path.insert(0, str(Path(__file__).resolve().parent))
from fraud_detection import CLASS_NAMES, build_auction_network  # noqa: E402


def main() -> None:
    graph, true_labels = build_auction_network(num_honest=120, num_accomplices=25,
                                               num_fraudsters=15, seed=11)
    print(f"auction network: {graph.num_nodes} accounts, "
          f"{graph.num_edges} transactions")

    # The analyst has investigated 15 % of the accounts.
    rng = np.random.default_rng(4)
    investigated_nodes = rng.choice(graph.num_nodes,
                                    size=int(0.15 * graph.num_nodes), replace=False)
    investigated = {int(node): int(true_labels[node]) for node in investigated_nodes}
    explicit = BeliefMatrix.from_labels(investigated, num_nodes=graph.num_nodes,
                                        num_classes=3, magnitude=0.1)

    # Learn the coupling from the investigated-investigated edges.
    estimate = estimate_coupling(graph, investigated, num_classes=3,
                                 class_names=CLASS_NAMES)
    expert = fraud_matrix()
    print(f"\ncoupling estimated from {estimate.num_observed_edges} "
          f"edges between investigated accounts")
    print("expert matrix (Fig. 1c), stochastic form:")
    print(np.round(expert.stochastic, 2))
    print("estimated matrix, stochastic form:")
    print(np.round(estimate.coupling.stochastic, 2))
    deviation = np.max(np.abs(expert.stochastic - estimate.coupling.stochastic))
    print(f"largest entry-wise deviation: {deviation:.3f}")

    # Label the rest of the network with both matrices.
    uninvestigated = [node for node in range(graph.num_nodes)
                      if node not in investigated]
    print(f"\n{'coupling':<22} {'accuracy on uninvestigated accounts'}")
    for name, base in (("expert (Fig. 1c)", expert),
                       ("estimated from labels", estimate.coupling)):
        epsilon = 0.5 * convergence.max_epsilon_sufficient(graph, base)
        result = linbp(graph, base.scaled(epsilon), explicit.residuals)
        accuracy = labeling_accuracy(true_labels, result.hard_labels(),
                                     restrict_to=uninvestigated)
        print(f"{name:<22} {accuracy:.3f}")


if __name__ == "__main__":
    main()
