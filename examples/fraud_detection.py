#!/usr/bin/env python3
"""Fraud detection in an online auction network (the paper's Fig. 1c scenario).

Three classes of users interact in an auction marketplace:

* **Honest (H)** users trade with other honest users and with accomplices;
* **Accomplices (A)** build reputation by trading with honest users and feed
  fraudsters, but avoid each other;
* **Fraudsters (F)** interact mostly with accomplices (to build reputation)
  and only hit honest users right before disappearing.

This mixes homophily (H–H) with heterophily (A–F), which is exactly what the
general coupling matrix of Fig. 1c encodes.  Starting from a few manually
investigated accounts, LinBP propagates suspicion through the transaction
graph; the example then compares LinBP, LinBP* and SBP and prints the most
suspicious uninvestigated accounts.

Run with::

    python examples/fraud_detection.py
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np

from repro import BeliefMatrix, Graph, fraud_matrix, linbp, linbp_star, sbp
from repro.core import convergence
from repro.metrics import labeling_accuracy

CLASS_NAMES = ("honest", "accomplice", "fraudster")


def build_auction_network(num_honest: int = 60, num_accomplices: int = 12,
                          num_fraudsters: int = 8,
                          seed: int = 7) -> Tuple[Graph, np.ndarray]:
    """Generate a transaction graph with planted H/A/F roles.

    Returns the graph and the planted ground-truth labels (0=H, 1=A, 2=F).
    The interaction probabilities follow the qualitative description in the
    paper's introduction: H-H and H-A are common, A-A is absent, A-F is very
    common, F-H is rare, F-F is rare.
    """
    rng = np.random.default_rng(seed)
    labels = np.array([0] * num_honest + [1] * num_accomplices + [2] * num_fraudsters)
    num_nodes = labels.size
    interaction_probability = {
        (0, 0): 0.06, (0, 1): 0.10, (0, 2): 0.01,
        (1, 1): 0.00, (1, 2): 0.45, (2, 2): 0.02,
    }
    edges = []
    for source in range(num_nodes):
        for target in range(source + 1, num_nodes):
            key = tuple(sorted((labels[source], labels[target])))
            if rng.random() < interaction_probability[key]:
                edges.append((source, target))
    return Graph.from_edges(edges, num_nodes=num_nodes), labels


def main() -> None:
    graph, true_labels = build_auction_network()
    print(f"auction network: {graph.num_nodes} accounts, "
          f"{graph.num_edges} transactions")

    # A handful of accounts have been investigated manually.
    investigated: Dict[int, int] = {0: 0, 5: 0, 17: 0,          # honest
                                    62: 1, 65: 1,               # accomplices
                                    73: 2, 75: 2}               # fraudsters
    explicit = BeliefMatrix.from_labels(investigated, num_nodes=graph.num_nodes,
                                        num_classes=3, magnitude=0.1)

    # Pick the coupling scale from the sufficient convergence bound (Lemma 9).
    base = fraud_matrix()
    safe_epsilon = 0.5 * convergence.max_epsilon_sufficient(graph, base)
    coupling = base.scaled(safe_epsilon)
    print(f"coupling scale epsilon_H = {safe_epsilon:.4f} "
          f"(half of the Lemma 9 bound)\n")

    results = {
        "LinBP": linbp(graph, coupling, explicit.residuals),
        "LinBP*": linbp_star(graph, coupling, explicit.residuals),
        "SBP": sbp(graph, coupling, explicit.residuals),
    }
    uninvestigated = [node for node in range(graph.num_nodes)
                      if node not in investigated]
    print(f"{'method':<8} {'accuracy on uninvestigated accounts':<38} iterations")
    for name, result in results.items():
        accuracy = labeling_accuracy(true_labels, result.hard_labels(),
                                     restrict_to=uninvestigated)
        print(f"{name:<8} {accuracy:<38.3f} {result.iterations}")

    # Rank the most suspicious accounts by their fraudster belief under LinBP.
    linbp_beliefs = results["LinBP"].beliefs
    fraud_scores = linbp_beliefs[:, 2]
    ranked = [node for node in np.argsort(-fraud_scores) if node in uninvestigated]
    print("\nmost suspicious uninvestigated accounts (LinBP fraud score):")
    for node in ranked[:8]:
        print(f"  account {node:>3}: score {fraud_scores[node]:+.5f} "
              f"(true role: {CLASS_NAMES[true_labels[node]]})")


if __name__ == "__main__":
    main()
